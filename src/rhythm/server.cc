#include "rhythm/server.hh"

#include <algorithm>

#include "backend/protocol.hh"
#include "http/parser.hh"

#include "obs/obs.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhythm::core {
namespace {

/** Simulated device address of the raw request buffer region. */
constexpr uint64_t kRequestRegionBase = 0x9000'0000;

/** 503 for requests rejected by the load shedder. */
constexpr const char *kShedResponse =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Retry-After: 1\r\n"
    "Content-Length: 0\r\n\r\n";

/** 503 for lanes whose backend calls exhausted the retry budget. */
constexpr const char *kBackendUnavailableResponse =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Length: 0\r\n\r\n";

/** Latency samples required before the p99 shedder may trip. */
constexpr uint64_t kMinSloSamples = 64;

/** Instruction weight per thread of a transpose kernel element loop. */
constexpr uint32_t kTransposeInstsPerThread = 96;

/** Idempotency-token slot widths: token = ((cohort launch ordinal ×
 *  stage slots + stage) × lane slots + lane) + 1, so tokens are unique
 *  per logical backend call and stable across retries and hedges. */
constexpr uint64_t kTokenStageSlots = 64;
constexpr uint64_t kTokenLaneSlots = 65536;

simt::NullTracer gNull;

/** Scales a kernel profile's totals by a sampling factor. */
simt::KernelProfile
scaleProfile(simt::KernelProfile profile, double factor)
{
    if (factor == 1.0)
        return profile;
    auto scale = [&](uint64_t &v) {
        v = static_cast<uint64_t>(static_cast<double>(v) * factor + 0.5);
    };
    scale(profile.totals.issueSlots);
    scale(profile.totals.laneInstructions);
    scale(profile.totals.steps);
    scale(profile.totals.laneBlockExecs);
    scale(profile.totals.activeLaneSteps);
    scale(profile.totals.globalTransactions);
    scale(profile.totals.globalBytes);
    scale(profile.totals.sharedAccesses);
    scale(profile.totals.sharedReplaySlots);
    scale(profile.totals.constantAccesses);
    scale(profile.warps);
    scale(profile.threads);
    return profile;
}

} // namespace

/** Host-side precomputation of one cohort's pipeline execution. */
struct RhythmServer::CohortRun
{
    /** One simulated pipeline step on the cohort's stream. */
    struct Cmd
    {
        enum class Kind { Kernel, CopyToHost, CopyToDevice, HostDelay };
        Kind kind = Kind::Kernel;
        simt::KernelCost cost;
        uint64_t bytes = 0;
        des::Time delay = 0;
        /** Injected kernel hang (excised from hedge sequences). */
        bool hang = false;
    };

    /** One logical backend call, recorded for hedge replay. */
    struct BackendCall
    {
        uint64_t token = 0;
        std::string request;
        std::string response;
    };

    std::vector<Cmd> sequence;
    /** Launch ordinal (seeds this cohort's idempotency tokens). */
    uint64_t seq = 0;
    /** Simulated time the cohort entered the pipeline. */
    des::Time launchedAt = 0;
    /**
     * The cohort's response buffer, owned for the lifetime of the run:
     * the responses below are zero-copy views into its lane slots.
     * Returned to the server's per-shape pool after delivery.
     */
    std::unique_ptr<CohortBuffer> buffer;
    /** Responses of executed lanes (views into `buffer` or literals). */
    std::vector<std::string_view> responses;
    /** Per-lane failure flags (uint8_t: lanes write concurrently). */
    std::vector<uint8_t> failed;
    uint32_t executedLanes = 0;
    double scale = 1.0;
    uint64_t responseContentBytes = 0; //!< Scaled to the full cohort.
    uint64_t paddingBytes = 0;
    size_t nextCmd = 0;
    /** Index of the first response-path command (tracing: where the
     *  process stage ends and the response stage begins). */
    size_t responseBeginIdx = 0;
    bool processClosed = false;  //!< Process span already emitted.
    des::Time responseStart = 0; //!< Response-stage span start.

    // ---- Watchdog / hedged execution -------------------------------
    /** Responses delivered (first-completion-wins guard tripped). */
    bool delivered = false;
    /** A hedged re-execution is (or was) in flight. */
    bool hedged = false;
    /** Pending watchdog timer; disarmed (cancelled) on delivery so an
     *  idle timer never extends the simulated run. */
    des::EventId watchdogEvent;
    bool watchdogArmed = false;
    /** Successful backend round trips, recorded only when the watchdog
     *  is armed so a hedge can replay them through the idempotency
     *  filter. */
    std::vector<BackendCall> backendCalls;
    /** Hedge command sequence (primary's minus injected hangs). */
    std::vector<Cmd> hedgeSequence;
    size_t hedgeNextCmd = 0;

    // ---- Cohort fusion (DESIGN.md Section 6j) ----------------------
    /** One follower cohort riding this (leader) run's fused launch:
     *  its own buffer/responses/failure flags live in its run, but the
     *  command sequence, watchdog and hang injection are the leader's. */
    struct Follower
    {
        CohortContext *ctx = nullptr;
        std::shared_ptr<CohortRun> run;
    };
    std::vector<Follower> followers;
};

/** Host-execution products of one cohort, consumed by command building. */
struct RhythmServer::HostExecState
{
    uint32_t type = 0;
    uint32_t n = 0;      //!< Cohort entries (before lane sampling).
    uint32_t sample = 0; //!< Executed lanes.
    int stages = 0;
    uint32_t laneBytes = 0;
    /** Recorded traces, [stage][lane]; returned to the trace pool by
     *  the command-building step that consumes them. */
    std::vector<std::vector<simt::ThreadTrace>> stageTraces;
    uint64_t backendInsts = 0;
    uint64_t backendCalls = 0;
    /** Worst per-lane retry attempts per stage (backoff rounds). */
    std::vector<uint32_t> retryRounds;
    /** Total retried calls per stage (retry service time). */
    std::vector<uint64_t> retriedCalls;
};

RhythmServer::RhythmServer(des::EventQueue &queue, simt::Device &device,
                           Service &service, const RhythmConfig &config)
    : queue_(queue), device_(device), service_(service), config_(config),
      pool_(config.cohortContexts, config.cohortSize),
      sloLatencyMs_(std::max<uint32_t>(config.sloWindow, 1))
{
    RHYTHM_ASSERT(config_.cohortSize > 0);
    sessions_ = std::make_unique<SessionArray>(
        config_.cohortSize, config_.sessionNodesPerBucket);
    parserStream_ = device_.createStream();
    cohortStreams_.reserve(config_.cohortContexts);
    for (uint32_t i = 0; i < config_.cohortContexts; ++i)
        cohortStreams_.push_back(device_.createStream());
    if (config_.watchdogTimeout > 0) {
        // Hedges ride their own streams so a wedged primary cannot
        // serialize its own rescue. Created only when the watchdog is
        // armed: the default stream layout stays identical.
        hedgeStreams_.reserve(config_.cohortContexts);
        for (uint32_t i = 0; i < config_.cohortContexts; ++i)
            hedgeStreams_.push_back(device_.createStream());
    }
    if (config_.overlapPipeline)
        parserStream2_ = device_.createStream();
    // Deadline accounting is active whenever adaptive batching is on
    // or any per-type deadline was configured (fixed-mode runs then
    // report comparable attainment without any scheduling change).
    bool any_typed = false;
    for (des::Time d : config_.typeDeadlines)
        any_typed = any_typed || d != 0;
    deadlinesTracked_ = config_.adaptiveBatching || any_typed;
    if (deadlinesTracked_) {
        minDeadline_ = config_.defaultDeadline;
        for (uint32_t t = 0; t < service_.numTypes(); ++t)
            minDeadline_ = std::min(minDeadline_, typeDeadline(t));
    }
    if (config_.adaptiveBatching)
        typeCostMs_.resize(service_.numTypes());
    if (config_.fusionEnabled)
        fingerprints_ = std::make_unique<analysis::FingerprintTracker>(
            service_.numTypes(), config_.fingerprint);
}

RhythmServer::~RhythmServer() = default;

void
RhythmServer::setResponseCallback(ResponseCallback cb)
{
    responseCb_ = std::move(cb);
}

void
RhythmServer::setFaultPlan(fault::FaultPlan *plan)
{
    faultPlan_ = plan;
}

void
RhythmServer::start(Source source)
{
    source_ = std::move(source);
    pump();
}

bool
RhythmServer::injectRequest(std::string raw, uint64_t client_id)
{
    if (forming_ && forming_->entries.size() >= config_.cohortSize &&
        parserSaturated()) {
        ++stats_.readerDrops;
        OBS_COUNTER_ADD("server.reader_drops", 1);
        return false; // reader stall: both buffers occupied
    }
    if (sheddingActive()) {
        shedRequest(client_id);
        return true; // consumed: answered with an immediate 503
    }
    if (!forming_)
        forming_ = std::make_unique<ReaderBatch>();
    if (forming_->entries.empty()) {
        forming_->firstArrival = queue_.now();
        scheduleTimeoutScan();
    }
    forming_->entries.push_back(
        RawEntry{std::move(raw), client_id, queue_.now()});
    ++stats_.requestsAccepted;
    OBS_COUNTER_ADD("server.requests_accepted", 1);
    ++inflightRequests_;
    noteAccepted(client_id);
    maybeLaunchBatch(false);
    return true;
}

uint64_t
RhythmServer::formationBacklog() const
{
    uint64_t backlog = forming_ ? forming_->entries.size() : 0;
    backlog += pendingDispatch_.size() + pendingImages_.size();
    for (const CohortContext &ctx : pool_.contexts()) {
        if (ctx.state() == CohortState::PartiallyFull ||
            ctx.state() == CohortState::Full)
            backlog += ctx.entries().size();
    }
    return backlog;
}

bool
RhythmServer::sheddingActive()
{
    bool shed = false;
    if (config_.shedBacklogLimit &&
        formationBacklog() >= config_.shedBacklogLimit)
        shed = true;
    if (!shed && config_.shedLatencySlo &&
        sloLatencyMs_.totalCount() >= kMinSloSamples &&
        sloLatencyMs_.percentile(99.0) >
            des::toMillis(config_.shedLatencySlo))
        shed = true;
    if (!shed && config_.adaptiveBatching && config_.adaptiveAdmission &&
        adaptiveOverloaded()) {
        // Deadline-aware admission: the backlog already needs longer to
        // drain than the tightest deadline allows, so an accepted
        // request is doomed — shed it now while the 503 is cheap.
        shed = true;
        ++stats_.adaptiveAdmissionSheds;
        OBS_COUNTER_ADD("adaptive.admission_sheds", 1);
    }
    // Accumulate degraded time incrementally (not only on the
    // degraded->healthy edge) so an interval still open when the run
    // ends is visible in the stats.
    if (degraded_) {
        stats_.degradedTime += queue_.now() - degradedSince_;
        degradedSince_ = queue_.now();
    } else if (shed) {
        degradedSince_ = queue_.now();
    }
    if (shed != degraded_)
        OBS_INSTANT(obs::track::kEvents,
                    shed ? "degraded-enter" : "degraded-exit",
                    "degradation");
    degraded_ = shed;
    return shed;
}

void
RhythmServer::shedRequest(uint64_t client_id)
{
    ++stats_.requestsAccepted;
    ++stats_.requestsShed;
    if (deadlinesTracked_)
        ++stats_.typedDeadlineMisses; // a shed request never attains
    OBS_COUNTER_ADD("server.requests_shed", 1);
    OBS_INSTANT(obs::track::kEvents, "shed", "degradation",
                {"client", client_id});
    if (responseCb_)
        responseCb_(client_id, kShedResponse, 0);
}

des::Time
RhythmServer::typeDeadline(uint32_t type) const
{
    if (type < config_.typeDeadlines.size() &&
        config_.typeDeadlines[type] != 0)
        return config_.typeDeadlines[type];
    return config_.defaultDeadline;
}

des::Time
RhythmServer::costEstimate(uint32_t type) const
{
    // Per-type EWMA when seeded, aggregate EWMA as the warm fallback,
    // and a prior before any cohort completed: the formation timeout
    // (what fixed mode would risk), or 1 ms with the timeout off.
    double ms = 0.0;
    if (type != CohortEntry::kTypeUnresolved &&
        type < typeCostMs_.size() && !typeCostMs_[type].empty())
        ms = typeCostMs_[type].value();
    else if (!aggCostMs_.empty())
        ms = aggCostMs_.value();
    else
        ms = config_.cohortTimeout
                 ? des::toMillis(config_.cohortTimeout)
                 : 1.0;
    ms *= config_.slackSafety;
    return static_cast<des::Time>(ms * des::kMillisecond);
}

bool
RhythmServer::adaptiveOverloaded() const
{
    // Until the launch-rate model has a few samples there is no
    // defensible drain estimate; admit everything and let the backlog
    // shedder govern. The threshold of 8 launches rides out cold-start
    // noise without delaying flash response by more than a few ms.
    if (config_.defaultDeadline == 0 || launchGapMs_.count() < 8 ||
        launchSizeAvg_.empty() || aggCostMs_.empty())
        return false;
    // Measured drain model: entries-per-launch over inter-launch gap is
    // the service rate the whole funnel actually achieves — parser-,
    // host- or device-bound, whichever binds (the configured cohort
    // geometry wildly overestimates it). The 2x margin matters: mean
    // sojourn sits near the deadline even at healthy load (formation
    // timeouts put the tail astride it), so a tight threshold sheds
    // requests that would mostly have hit. Admission is only for
    // queues no formation policy could serve — a flash crowd's excess
    // — where the backlog drain alone already dwarfs the deadline.
    const double gap_s = std::max(launchGapMs_.value() / 1e3, 1e-9);
    const double rate = std::max(launchSizeAvg_.value(), 1.0) / gap_s;
    const double drain_s =
        static_cast<double>(formationBacklog()) / rate;
    return drain_s > 2.0 * des::toSeconds(config_.defaultDeadline);
}

void
RhythmServer::preemptForType(uint32_t type)
{
    // A tight-deadline type found every context occupied. Launch the
    // oldest forming cohort of a slacker type early so the freed
    // context (after delivery) can host the interactive type. Busy
    // contexts are already on the device and cannot be reclaimed.
    // Same work-conserving rule as the slack dispatcher: launching a
    // partial victim onto a loaded device costs capacity, so only
    // preempt while the device has headroom.
    uint32_t busy = 0;
    for (const CohortContext &c : pool_.contexts())
        if (c.state() == CohortState::Busy)
            ++busy;
    if (busy * 2 >= config_.cohortContexts)
        return;
    const des::Time deadline = typeDeadline(type);
    CohortContext *victim = pool_.oldestPartiallyFull(
        [&](const CohortContext &ctx) {
            return ctx.type() != type &&
                   typeDeadline(ctx.type()) > deadline;
        });
    if (!victim)
        return;
    ++stats_.adaptivePreemptions;
    OBS_COUNTER_ADD("adaptive.preemptions", 1);
    OBS_INSTANT(obs::track::kEvents, "adaptive-preempt", "adaptive",
                {"victim_type",
                 std::string(service_.typeName(victim->type()))},
                {"for_type", std::string(service_.typeName(type))});
    launchCohort(*victim);
}

void
RhythmServer::noteAccepted(uint64_t client_id)
{
    if (faultPlan_ &&
        faultPlan_->at(fault::Site::ClientDisconnect, queue_.now())
            .fire) {
        ++stats_.faultsInjected;
        OBS_INSTANT(obs::track::kEvents, "client-disconnect", "fault",
                    {"client", client_id});
        disconnected_.insert(client_id);
    }
}

void
RhythmServer::pump()
{
    if (!source_)
        return;
    for (;;) {
        if (forming_ && forming_->entries.size() >= config_.cohortSize) {
            maybeLaunchBatch(false);
            if (forming_ && forming_->entries.size() >= config_.cohortSize)
                return; // parser busy: reader stalls on the back buffer
            continue;
        }
        std::optional<std::string> raw = source_();
        if (!raw) {
            source_ = nullptr;
            maybeLaunchBatch(true);
            return;
        }
        const uint64_t client_id = nextClientId_++;
        if (sheddingActive()) {
            shedRequest(client_id);
            continue;
        }
        if (!forming_)
            forming_ = std::make_unique<ReaderBatch>();
        if (forming_->entries.empty())
            forming_->firstArrival = queue_.now();
        forming_->entries.push_back(
            RawEntry{std::move(*raw), client_id, queue_.now()});
        ++stats_.requestsAccepted;
        OBS_COUNTER_ADD("server.requests_accepted", 1);
        ++inflightRequests_;
        noteAccepted(client_id);
    }
}

void
RhythmServer::maybeLaunchBatch(bool force)
{
    if (parserSaturated() || !forming_ || forming_->entries.empty())
        return;
    if (!force && forming_->entries.size() < config_.cohortSize)
        return;
    std::unique_ptr<ReaderBatch> batch = std::move(forming_);
    ++parserInFlight_;
    parseBatch(std::move(batch), parseSeqNext_++);
}

void
RhythmServer::parseBatch(std::unique_ptr<ReaderBatch> batch, uint64_t seq)
{
    ++stats_.parserBatches;
    const uint32_t n = static_cast<uint32_t>(batch->entries.size());
    const uint32_t sample =
        config_.laneSample == 0 ? n : std::min(n, config_.laneSample);
    // The reader stage for this batch spans from its first arrival to
    // the hand-off to the parser (now).
    OBS_SPAN_COMPLETE(obs::track::kReader, "reader", "stage",
                      batch->firstArrival, queue_.now(),
                      {"requests", static_cast<uint64_t>(n)});
    const des::Time parse_start = queue_.now();

    // Scissored upload (overlapPipeline): ship the bytes the requests
    // actually occupy in their slots instead of the full slot array.
    // Must be summed here — the raw strings move into the parsed
    // entries below.
    uint64_t upload_bytes =
        static_cast<uint64_t>(n) * config_.requestSlotBytes;
    if (config_.overlapPipeline && config_.networkOverPcie) {
        uint64_t occupied = 0;
        for (const RawEntry &e : batch->entries)
            occupied += std::min<uint64_t>(e.raw.size(),
                                           config_.requestSlotBytes);
        upload_bytes = occupied;
    }

    // Parse every request (dispatch needs the results); record traces
    // for the sampled lanes to cost the parser kernel. Each lane
    // touches only its own entry/trace slot, so the loop fans out over
    // the sim pool; results are index-addressed and order-free.
    //
    // Template cache (traceTemplateCacheEntries > 0): the parser's
    // trace is an affine function of the lane's buffer base address,
    // so a raw request seen before replays its recorded template with
    // the base patched in — byte-identical to a fresh recording. The
    // shared map is consulted serially before the fork (hit pointers
    // are stable: the map is node-based and never erased from) and
    // grown serially after the join, in canonical lane order.
    //
    // The request-buffer transpose is a single pass everywhere: the
    // no-cache path records through a TransposingRecorder (loads land
    // in device-staging layout as they are recorded), and the cache
    // paths record templates at base 0 natively and materialize each
    // lane's trace with one fused rebase+transpose loop. All paths use
    // transposedRegionAddr(), so the result is bit-identical to the
    // old record → rebase → post-pass-transpose chain.
    auto parsed = std::make_shared<std::vector<CohortEntry>>();
    parsed->resize(n);
    std::vector<simt::ThreadTrace> traces = tracePool_.acquire();
    traces.resize(sample);
    const uint32_t tmpl_cap = config_.traceTemplateCacheEntries;
    std::vector<const simt::ThreadTrace *> hit_tmpl;
    std::vector<simt::ThreadTrace> fresh_tmpl;
    if (tmpl_cap > 0) {
        hit_tmpl.assign(sample, nullptr);
        fresh_tmpl.resize(sample);
        for (uint32_t i = 0; i < sample; ++i) {
            auto it = parserTemplates_.find(batch->entries[i].raw);
            if (it != parserTemplates_.end())
                hit_tmpl[i] = &it->second;
        }
    }
    // Builds a lane's trace from a base-0 template: rebase every op to
    // the lane's slot, mapping in-slot loads straight into the
    // transposed layout when active (one pass over the ops).
    auto materialize = [this, sample](const simt::ThreadTrace &tmpl,
                                      simt::ThreadTrace &out, uint32_t i,
                                      uint64_t vaddr) {
        out = tmpl;
        const uint32_t slot_bytes = config_.requestSlotBytes;
        const bool transpose = config_.transposeBuffers;
        for (simt::MemOp &op : out.memOps) {
            if (transpose && !op.isStore && op.addr < slot_bytes) {
                op.addr = transposedRegionAddr(kRequestRegionBase, i,
                                               op.addr, sample);
                op.stride = sample * 4;
            } else {
                op.addr += vaddr;
            }
        }
    };
    util::simPool().parallelRanges(
        n, 64,
        [this, &batch, &parsed, &traces, &hit_tmpl, &fresh_tmpl,
         &materialize, tmpl_cap, sample](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                RawEntry &raw = batch->entries[i];
                CohortEntry &entry = (*parsed)[i];
                entry.raw = std::move(raw.raw);
                entry.arrival = raw.arrival;
                entry.clientId = raw.clientId;
                const uint32_t lane = static_cast<uint32_t>(i);
                const uint64_t vaddr =
                    kRequestRegionBase +
                    static_cast<uint64_t>(i) * config_.requestSlotBytes;
                bool ok;
                if (i < sample && tmpl_cap > 0 && hit_tmpl[i]) {
                    // Replay: parse without recording (dispatch needs
                    // the parsed request), then materialize the
                    // template into this lane's trace slot.
                    ok = http::parseRequest(entry.raw, vaddr, gNull,
                                            entry.request);
                    materialize(*hit_tmpl[i], traces[i], lane, vaddr);
                } else if (i < sample && tmpl_cap > 0) {
                    // Record the template at base 0 natively (its
                    // stored form), then materialize like a hit; the
                    // template is published serially after the join.
                    simt::RecordingTracer rec(fresh_tmpl[i]);
                    ok = http::parseRequest(entry.raw, 0, rec,
                                            entry.request);
                    materialize(fresh_tmpl[i], traces[i], lane, vaddr);
                } else if (i < sample && config_.transposeBuffers) {
                    TransposingRecorder rec(traces[i], kRequestRegionBase,
                                            lane,
                                            config_.requestSlotBytes,
                                            sample);
                    ok = http::parseRequest(entry.raw, vaddr, rec,
                                            entry.request);
                } else if (i < sample) {
                    simt::RecordingTracer rec(traces[i]);
                    ok = http::parseRequest(entry.raw, vaddr, rec,
                                            entry.request);
                } else {
                    ok = http::parseRequest(entry.raw, vaddr, gNull,
                                            entry.request);
                }
                if (!ok)
                    entry.request.path.clear(); // dispatch will 400 it
            }
        });
    if (tmpl_cap > 0) {
        for (uint32_t i = 0; i < sample; ++i) {
            if (hit_tmpl[i] || parserTemplates_.size() >= tmpl_cap)
                continue;
            parserTemplates_.try_emplace((*parsed)[i].raw,
                                         std::move(fresh_tmpl[i]));
        }
    }

    std::vector<const simt::ThreadTrace *> ptrs;
    ptrs.reserve(sample);
    for (const auto &t : traces)
        ptrs.push_back(&t);
    const double scale = static_cast<double>(n) / sample;
    simt::KernelProfile parser_profile = scaleProfile(
        device_.engine().profile(ptrs, config_.warpModel, "parser"),
        scale);
    const simt::KernelCost parser_cost =
        computeKernelCost(parser_profile, device_.config());
    tracePool_.release(std::move(traces));

    // Device chain: [H2D copy] → [request transpose] → [parser kernel].
    // With overlapPipeline the two in-flight batches alternate parser
    // streams, so chain k+1 never serializes behind chain k's commands.
    const int pstream = (config_.overlapPipeline && (seq & 1))
                            ? parserStream2_
                            : parserStream_;
    auto after_parse = [this, parsed, parse_start, n, sample, seq]() {
        OBS_SPAN_COMPLETE(obs::track::kParser, "parse", "stage",
                          parse_start, queue_.now(),
                          {"requests", static_cast<uint64_t>(n)},
                          {"sampled_lanes", static_cast<uint64_t>(sample)});
        RHYTHM_ASSERT(parserInFlight_ > 0);
        --parserInFlight_;
        parsedReady(seq, std::move(*parsed));
        maybeLaunchBatch(false);
        pump();
    };
    auto launch_parser = [this, pstream, parser_cost, after_parse]() {
        device_.launchKernel(pstream, parser_cost, after_parse);
    };
    auto launch_transpose = [this, pstream, n, launch_parser]() {
        if (!config_.transposeBuffers) {
            launch_parser();
            return;
        }
        simt::KernelProfile tp = simt::KernelProfile::streaming(
            n, 2ull * n * config_.requestSlotBytes,
            kTransposeInstsPerThread, config_.warpModel, "req-transpose");
        device_.launchKernel(pstream,
                             computeKernelCost(tp, device_.config()),
                             launch_parser);
    };
    if (config_.networkOverPcie) {
        device_.copyToDevice(pstream, upload_bytes, launch_transpose);
    } else {
        launch_transpose();
    }
}

void
RhythmServer::parsedReady(uint64_t seq, std::vector<CohortEntry> parsed)
{
    // Parse chains on distinct streams may complete out of batch order;
    // dispatch must not. Queue completions and drain strictly in
    // sequence so cohort formation and every backend/session mutation
    // happen in the same canonical order as the serial pipeline — the
    // responses are then byte-identical with overlap on or off.
    parsedReorder_.emplace(seq, std::move(parsed));
    while (!parsedReorder_.empty() &&
           parsedReorder_.begin()->first == parseDispatchNext_) {
        std::vector<CohortEntry> next =
            std::move(parsedReorder_.begin()->second);
        parsedReorder_.erase(parsedReorder_.begin());
        ++parseDispatchNext_;
        dispatchParsed(std::move(next));
    }
}

void
RhythmServer::setStaticContent(const specweb::StaticContent *content)
{
    staticContent_ = content;
}

void
RhythmServer::dispatchParsed(std::vector<CohortEntry> parsed)
{
    // Fast path: nothing queued and no drain in progress — route each
    // entry straight from the parsed batch into its cohort context.
    // This skips the pendingDispatch_ round trip (one CohortEntry move
    // instead of two, no deque churn); entries blocked on a busy
    // context queue up for the next pass. Routing order is identical
    // to the queued path.
    if (!drainActive_ && pendingDispatch_.empty()) {
        drainActive_ = true;
        typeBlocked_.assign(service_.numTypes(), 0);
        for (CohortEntry &entry : parsed) {
            if (routeEntry(entry) == RouteResult::Blocked)
                pendingDispatch_.push_back(std::move(entry));
        }
        drainActive_ = false;
        return;
    }
    for (CohortEntry &entry : parsed)
        pendingDispatch_.push_back(std::move(entry));
    drainDispatch();
}

bool
RhythmServer::serveOnHost(CohortEntry &entry)
{
    // Host-fallback execution (Section 3.1): requests that do not fit
    // the data-parallel model — quick pay's variable backend loop —
    // run on the general purpose core. The simulated service time is
    // the measured instruction count over the host's execution rate.
    simt::CountingTracer counter;
    std::optional<std::string> response =
        service_.serveFallback(entry.request, *sessions_, counter);
    if (!response)
        return false;
    ++stats_.hostFallbackRequests;
    auto shared = std::make_shared<std::string>(std::move(*response));
    const des::Time service_time = des::fromSeconds(
        static_cast<double>(counter.instructions()) /
        config_.hostFallbackInstsPerSec);
    queue_.scheduleAfter(
        service_time, [this, shared, client = entry.clientId,
                       arrival = entry.arrival]() {
            completeRequest(client, *shared, queue_.now() - arrival,
                            false);
        });
    return true;
}

void
RhythmServer::launchImageCohort()
{
    if (pendingImages_.empty())
        return;
    // Image cohorts bypass the process stage entirely (Section 5.1):
    // the stored bytes go straight to the response path. With an
    // integrated NIC this costs the device nothing; on a discrete card
    // the bytes cross PCIe.
    auto entries = std::make_shared<std::vector<CohortEntry>>(
        std::move(pendingImages_));
    pendingImages_.clear();
    ++stats_.imageCohorts;

    uint64_t bytes = 0;
    auto responses = std::make_shared<std::vector<std::string>>();
    responses->reserve(entries->size());
    for (const CohortEntry &entry : *entries) {
        std::string response = staticContent_->buildResponse(
            entry.request.path);
        bytes += response.size();
        responses->push_back(std::move(response));
    }
    stats_.imageRequests += entries->size();
    stats_.imageBytes += bytes;

    auto deliver = [this, entries, responses]() {
        for (size_t i = 0; i < entries->size(); ++i) {
            completeRequest((*entries)[i].clientId, (*responses)[i],
                            queue_.now() - (*entries)[i].arrival, false);
        }
        drainDispatch();
        pump();
    };
    if (config_.networkOverPcie)
        device_.copyToHost(parserStream_, bytes, deliver);
    else
        queue_.scheduleAfter(des::kMicrosecond, deliver);
}

void
RhythmServer::drainDispatch()
{
    // Guard against reentrancy: completeRequest's callback may inject
    // requests synchronously, re-entering dispatch mid-loop.
    if (drainActive_)
        return;
    drainActive_ = true;
    typeBlocked_.assign(service_.numTypes(), 0);
    // One pass over the queue, compacting in place: consumed entries
    // leave gaps, retained (blocked) entries slide forward to fill
    // them. The common steady-state prefix — entries of types whose
    // contexts are all busy — stays exactly where it is with no moves
    // at all (keep == i). Relative order of retained entries is
    // preserved, and entries appended mid-pass (reentrant injection)
    // are picked up by the dynamic size check, matching the historical
    // drain-until-empty loop.
    size_t keep = 0;
    for (size_t i = 0; i < pendingDispatch_.size(); ++i) {
        CohortEntry &entry = pendingDispatch_[i];
        if (routeEntry(entry) == RouteResult::Blocked) {
            if (keep != i)
                pendingDispatch_[keep] = std::move(entry);
            ++keep;
        }
    }
    pendingDispatch_.resize(keep);
    drainActive_ = false;
}

RhythmServer::RouteResult
RhythmServer::routeEntry(CohortEntry &entry)
{
    // Routes one dispatch-ready entry: static content, cohort type,
    // host fallback or 404. Consumes the entry unless it reports
    // Blocked (structural hazard: no cohort context for its type).
    if (staticContent_ &&
        specweb::StaticContent::isStaticPath(entry.request.path) &&
        staticContent_->lookup(entry.request.path)) {
        const bool was_empty = pendingImages_.empty();
        pendingImages_.push_back(std::move(entry));
        if (pendingImages_.size() >= config_.cohortSize)
            launchImageCohort();
        else if (was_empty)
            scheduleTimeoutScan();
        return RouteResult::Consumed;
    }
    uint32_t type = entry.routeType;
    if (type == CohortEntry::kTypeUnresolved) {
        if (entry.request.path.empty() ||
            !service_.resolveType(entry.request, type)) {
            // Not a cohort type: try the service's host fallback
            // (requests outside the data-parallel model, Section 3.1),
            // else 404.
            if (!entry.request.path.empty() && serveOnHost(entry))
                return RouteResult::Consumed;
            completeRequest(entry.clientId,
                            "HTTP/1.1 404 Not Found\r\n"
                            "Content-Length: 0\r\n\r\n",
                            queue_.now() - entry.arrival, true);
            return RouteResult::Consumed;
        }
        entry.routeType = type;
    }
    // Structural-hazard memo, valid for the rest of this dispatch
    // pass: contexts only fill up or go Busy while the pass runs
    // (releases happen in later DES events), so once acquireFor fails
    // for a type it keeps failing until the pass ends. Blocked
    // entries keep per-type FIFO order but do not head-of-line block
    // other types — with more types than contexts a strict FIFO
    // collapses into timeout-launched fragments.
    if (typeBlocked_[type])
        return RouteResult::Blocked;
    CohortContext *ctx = pool_.acquireFor(type);
    if (!ctx) {
        typeBlocked_[type] = 1;
        // Priority lane: under adaptive batching a tight-deadline type
        // may launch the oldest forming cohort of a slacker type early,
        // so the context it frees (after delivery) is available next
        // pass. The entry still reports Blocked — the launched context
        // is Busy until its responses deliver — so the structural-
        // hazard memo above stays valid for this pass.
        if (config_.adaptiveBatching)
            preemptForType(type);
        return RouteResult::Blocked;
    }
    const bool was_empty = ctx->entries().empty();
    const bool full = ctx->add(std::move(entry));
    if (was_empty)
        scheduleTimeoutScan();
    if (full)
        launchCohort(*ctx);
    return RouteResult::Consumed;
}

void
RhythmServer::scheduleTimeoutScan()
{
    if (timeoutScanScheduled_ ||
        (config_.cohortTimeout == 0 && !config_.adaptiveBatching))
        return;
    timeoutScanScheduled_ = true;
    // Fixed mode re-arms at half the formation timeout (unchanged).
    // Adaptive mode additionally bounds the period by the slack-scan
    // interval so tight deadlines are checked often enough even with a
    // long (or disabled) formation timeout.
    des::Time interval = config_.cohortTimeout / 2;
    if (config_.adaptiveBatching) {
        interval = interval ? std::min(interval,
                                       config_.adaptiveScanInterval)
                            : config_.adaptiveScanInterval;
        if (interval == 0)
            interval = 1;
    }
    queue_.scheduleAfter(interval, [this]() {
        timeoutScanScheduled_ = false;
        const des::Time now = queue_.now();
        const bool adaptive = config_.adaptiveBatching;
        const bool timed = config_.cohortTimeout != 0;
        // Slack test (DESIGN.md Section 6i): dispatch early once the
        // oldest aboard request could no longer make its deadline if
        // formation waited another scan period.
        auto out_of_slack = [&](des::Time oldest, uint32_t type,
                                des::Time deadline) {
            return adaptive &&
                   now - oldest + costEstimate(type) >= deadline;
        };
        // Early dispatch must be work-conserving: a partial launch only
        // buys latency when the stage it feeds would otherwise idle.
        // Flushing the reader into a busy parser, or a cohort onto a
        // loaded device, fragments batches and *costs* capacity — the
        // exact failure mode under a flash crowd. Saturated stages fall
        // back to the fixed-timeout path.
        uint32_t busy = 0;
        if (adaptive) {
            for (const CohortContext &c : pool_.contexts())
                if (c.state() == CohortState::Busy)
                    ++busy;
        }
        const bool parser_idle = adaptive && parserInFlight_ == 0;
        const bool device_headroom =
            adaptive && busy * 2 < config_.cohortContexts;
        bool anything_forming = false;
        if (forming_ && !forming_->entries.empty()) {
            const des::Time oldest = forming_->firstArrival;
            if (timed && now - oldest >= config_.cohortTimeout) {
                ++stats_.cohortTimeouts;
                OBS_COUNTER_ADD("server.cohort_timeouts", 1);
                maybeLaunchBatch(true);
            } else if (parser_idle &&
                       out_of_slack(oldest, CohortEntry::kTypeUnresolved,
                                    minDeadline_)) {
                ++stats_.adaptiveEarlyDispatches;
                OBS_COUNTER_ADD("adaptive.early_dispatches", 1);
                maybeLaunchBatch(true);
            } else {
                anything_forming = true;
            }
        }
        std::vector<CohortContext *> expired;
        std::vector<CohortContext *> early;
        pool_.forEachForming([&](CohortContext &ctx) {
            if (ctx.state() != CohortState::PartiallyFull) {
                anything_forming = true;
                return;
            }
            if (timed && now - ctx.firstArrival() >= config_.cohortTimeout)
                expired.push_back(&ctx);
            else if (device_headroom &&
                     out_of_slack(ctx.firstArrival(), ctx.type(),
                                  typeDeadline(ctx.type())))
                early.push_back(&ctx);
            else
                anything_forming = true;
        });
        // Attribute the launch reasons, then launch the whole instant's
        // collection as one group so fusion (when on) can pack the
        // partial cohorts that expired or ran out of slack together.
        std::vector<CohortContext *> launches;
        launches.reserve(expired.size() + early.size());
        for (CohortContext *ctx : expired) {
            ++stats_.cohortTimeouts;
            OBS_COUNTER_ADD("server.cohort_timeouts", 1);
            launches.push_back(ctx);
        }
        for (CohortContext *ctx : early) {
            ++stats_.adaptiveEarlyDispatches;
            OBS_COUNTER_ADD("adaptive.early_dispatches", 1);
            launches.push_back(ctx);
        }
        launchCohortGroup(launches);
        if (!pendingImages_.empty()) {
            const des::Time oldest = pendingImages_.front().arrival;
            if (timed && now - oldest >= config_.cohortTimeout) {
                ++stats_.cohortTimeouts;
                OBS_COUNTER_ADD("server.cohort_timeouts", 1);
                launchImageCohort();
            } else if (device_headroom &&
                       out_of_slack(oldest, CohortEntry::kTypeUnresolved,
                                    config_.defaultDeadline)) {
                ++stats_.adaptiveEarlyDispatches;
                OBS_COUNTER_ADD("adaptive.early_dispatches", 1);
                launchImageCohort();
            } else {
                anything_forming = true;
            }
        }
        if (anything_forming)
            scheduleTimeoutScan();
    });
}

void
RhythmServer::flush()
{
    maybeLaunchBatch(true);
    std::vector<CohortContext *> forming;
    pool_.forEachForming([&](CohortContext &ctx) {
        if (ctx.state() == CohortState::PartiallyFull &&
            !ctx.entries().empty())
            forming.push_back(&ctx);
    });
    launchCohortGroup(forming);
    launchImageCohort();
}

bool
RhythmServer::drained() const
{
    return inflightRequests_ == 0;
}

void
RhythmServer::completeRequest(uint64_t client_id,
                              std::string_view response,
                              des::Time latency, bool failed,
                              uint32_t route_type)
{
    RHYTHM_ASSERT(inflightRequests_ > 0);
    --inflightRequests_;
    if (!disconnected_.empty() && disconnected_.erase(client_id) > 0) {
        // The client hung up mid-pipeline: the work happened but the
        // response is undeliverable. Count it as an error (lost
        // goodput) and keep it out of the latency SLO window.
        ++stats_.clientDisconnects;
        ++stats_.errorResponses;
        return;
    }
    if (deadlinesTracked_) {
        if (!failed && latency <= typeDeadline(route_type))
            ++stats_.typedDeadlineHits;
        else
            ++stats_.typedDeadlineMisses;
    }
    if (failed)
        ++stats_.errorResponses;
    else
        ++stats_.responsesCompleted;
    OBS_COUNTER_ADD(failed ? "server.errors" : "server.responses", 1);
    if (config_.requestDeadline && latency > config_.requestDeadline)
        ++stats_.deadlineMisses;
    stats_.latencyMs.add(des::toMillis(latency));
    OBS_HIST_ADD("server.latency_ms", des::toMillis(latency));
    if (config_.shedLatencySlo)
        sloLatencyMs_.add(des::toMillis(latency));
    if (responseCb_)
        responseCb_(client_id, response, latency);
}

void
RhythmServer::launchCohort(CohortContext &ctx)
{
    if (config_.adaptiveBatching) {
        if (lastLaunch_ != 0)
            launchGapMs_.add(des::toMillis(queue_.now() - lastLaunch_));
        lastLaunch_ = queue_.now();
        launchSizeAvg_.add(
            static_cast<double>(ctx.entries().size()));
    }
    ctx.markBusy();
    ++stats_.cohortsLaunched;
    auto run = std::make_shared<CohortRun>();
    run->seq = cohortSeq_++;
    run->launchedAt = queue_.now();
    if (OBS_ENABLED()) {
        const uint32_t tr = obs::track::kCohortBase + ctx.id();
        OBS_TRACK_NAME(tr, "cohort ctx " + std::to_string(ctx.id()));
        // The dispatch stage for this cohort spans from its first
        // member's arrival in a context to the pipeline launch (now).
        OBS_SPAN_COMPLETE(
            tr, "dispatch", "stage", ctx.firstArrival(), queue_.now(),
            {"requests", static_cast<uint64_t>(ctx.entries().size())},
            {"type", std::string(service_.typeName(ctx.type()))});
        OBS_COUNTER_ADD("server.cohorts_launched", 1);
    }
    executeCohort(ctx, *run);
    maybeInjectHang(*run, /*hedge=*/false);
    enqueueCohortPipeline(ctx, std::move(run));
}

void
RhythmServer::launchCohortGroup(const std::vector<CohortContext *> &ctxs)
{
    if (ctxs.empty())
        return;
    if (!config_.fusionEnabled || ctxs.size() == 1) {
        for (CohortContext *ctx : ctxs)
            launchCohort(*ctx);
        return;
    }
    // Per-cohort launch bookkeeping and host execution first, in
    // collection order — the exact order the unfused path would have
    // used. Host execution is where backend state is read and mutated
    // and response bytes are written, so running it before (and
    // independently of) the grouping below keeps every delivered byte
    // identical to --fusion=off no matter how the cohorts are packed
    // into launches.
    std::vector<std::shared_ptr<CohortRun>> runs;
    runs.reserve(ctxs.size());
    std::vector<HostExecState> states(ctxs.size());
    for (size_t i = 0; i < ctxs.size(); ++i) {
        CohortContext *ctx = ctxs[i];
        if (config_.adaptiveBatching) {
            if (lastLaunch_ != 0)
                launchGapMs_.add(
                    des::toMillis(queue_.now() - lastLaunch_));
            lastLaunch_ = queue_.now();
            launchSizeAvg_.add(
                static_cast<double>(ctx->entries().size()));
        }
        ctx->markBusy();
        ++stats_.cohortsLaunched;
        auto run = std::make_shared<CohortRun>();
        run->seq = cohortSeq_++;
        run->launchedAt = queue_.now();
        if (OBS_ENABLED()) {
            const uint32_t tr = obs::track::kCohortBase + ctx->id();
            OBS_TRACK_NAME(tr, "cohort ctx " + std::to_string(ctx->id()));
            OBS_SPAN_COMPLETE(
                tr, "dispatch", "stage", ctx->firstArrival(), queue_.now(),
                {"requests", static_cast<uint64_t>(ctx->entries().size())},
                {"type", std::string(service_.typeName(ctx->type()))});
            OBS_COUNTER_ADD("server.cohorts_launched", 1);
        }
        runs.push_back(std::move(run));
        executeCohortHost(*ctx, *runs[i], states[i]);
    }

    // Greedy grouping in collection order: each cohort joins the first
    // compatible group. Collection order is deterministic (context-pool
    // scan order), so the grouping — and everything downstream — is a
    // pure function of the simulated schedule.
    std::vector<std::vector<CohortContext *>> groups;
    std::vector<std::vector<size_t>> group_idx;
    for (size_t i = 0; i < ctxs.size(); ++i) {
        bool placed = false;
        for (size_t g = 0; g < groups.size(); ++g) {
            if (canFuse(groups[g], *ctxs[i])) {
                groups[g].push_back(ctxs[i]);
                group_idx[g].push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed) {
            groups.push_back({ctxs[i]});
            group_idx.push_back({i});
        }
    }
    for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].size() == 1) {
            const size_t i = group_idx[g].front();
            buildCohortCommands(*runs[i], states[i]);
            maybeInjectHang(*runs[i], /*hedge=*/false);
            enqueueCohortPipeline(*ctxs[i], runs[i]);
            continue;
        }
        std::vector<std::shared_ptr<CohortRun>> g_runs;
        std::vector<HostExecState> g_states;
        g_runs.reserve(groups[g].size());
        g_states.reserve(groups[g].size());
        for (size_t i : group_idx[g]) {
            g_runs.push_back(runs[i]);
            g_states.push_back(std::move(states[i]));
        }
        launchFusedCohorts(groups[g], g_runs, g_states);
    }
}

bool
RhythmServer::canFuse(const std::vector<CohortContext *> &group,
                      const CohortContext &next) const
{
    if (group.size() >= config_.fusionMaxCohorts)
        return false;
    // Fused cohorts interleave their stage kernels and backend trips,
    // so the pipeline shapes must match exactly.
    if (service_.numStages(next.type()) !=
        service_.numStages(group.front()->type()))
        return false;
    // Packing must actually save a warp over padding each cohort's
    // tail separately — full warps gain nothing and would only widen
    // the blast radius of a hang or hedge.
    auto lanes_of = [&](const CohortContext &c) {
        const uint32_t n = static_cast<uint32_t>(c.entries().size());
        return config_.laneSample == 0 ? n
                                       : std::min(n, config_.laneSample);
    };
    const uint32_t width =
        static_cast<uint32_t>(config_.warpModel.warpWidth);
    auto warps_of = [&](uint32_t lanes) {
        return (lanes + width - 1) / width;
    };
    uint32_t lanes = 0;
    uint32_t separate_warps = 0;
    for (const CohortContext *member : group) {
        lanes += lanes_of(*member);
        separate_warps += warps_of(lanes_of(*member));
    }
    const uint32_t add = lanes_of(next);
    if (warps_of(lanes + add) >= separate_warps + warps_of(add))
        return false;
    // Control-flow compatibility against every member: O(1) reads of
    // the online fingerprint (DESIGN.md Section 6j).
    for (const CohortContext *member : group) {
        if (fingerprints_->pairSimilarity(member->type(), next.type()) <
            config_.fusionSimilarityThreshold)
            return false;
    }
    return true;
}

void
RhythmServer::launchFusedCohorts(
    const std::vector<CohortContext *> &group,
    std::vector<std::shared_ptr<CohortRun>> &runs,
    std::vector<HostExecState> &states)
{
    ++stats_.fusedLaunches;
    stats_.fusedCohorts += group.size();
    OBS_COUNTER_ADD("warp.fusion.fused_launches", 1);
    OBS_COUNTER_ADD("warp.fusion.fused_cohorts",
                    static_cast<uint64_t>(group.size()));

    buildFusedCommands(group, runs, states);

    // The leader run carries the fused command sequence, the watchdog
    // and (for hedge replay) every member's backend calls; followers'
    // runs keep only their own buffers/responses for delivery.
    const std::shared_ptr<CohortRun> &leader = runs.front();
    for (size_t i = 1; i < runs.size(); ++i) {
        leader->backendCalls.insert(leader->backendCalls.end(),
                                    runs[i]->backendCalls.begin(),
                                    runs[i]->backendCalls.end());
        runs[i]->backendCalls.clear();
        leader->followers.push_back(
            CohortRun::Follower{group[i], runs[i]});
    }
    maybeInjectHang(*leader, /*hedge=*/false);
    enqueueCohortPipeline(*group.front(), leader);
}

void
RhythmServer::maybeInjectHang(CohortRun &run, bool hedge)
{
    std::vector<CohortRun::Cmd> &sequence =
        hedge ? run.hedgeSequence : run.sequence;
    if (!faultPlan_)
        return;
    const fault::Decision hang =
        faultPlan_->at(fault::Site::KernelHang, queue_.now());
    if (!hang.fire)
        return;
    ++stats_.kernelHangs;
    ++stats_.faultsInjected;
    OBS_COUNTER_ADD("watchdog.kernel_hangs", 1);
    OBS_INSTANT(obs::track::kEvents, "kernel-hang", "fault",
                {"cohort", run.seq});
    // The cohort's first kernel wedges: model it as a huge-but-finite
    // stall at the front of the command sequence, so the DES always
    // drains even with the watchdog off. The schedule's delay sets the
    // stall; a zero-delay schedule stalls long past any plausible
    // watchdog so the hedge always wins.
    des::Time stall = hang.delay;
    if (stall == 0) {
        stall = config_.watchdogTimeout > 0 ? 8 * config_.watchdogTimeout
                                            : des::kSecond;
    }
    CohortRun::Cmd cmd;
    cmd.kind = CohortRun::Cmd::Kind::HostDelay;
    cmd.delay = stall;
    cmd.hang = true;
    sequence.insert(sequence.begin(), cmd);
    if (!hedge)
        ++run.responseBeginIdx;
}

void
RhythmServer::executeCohort(CohortContext &ctx, CohortRun &run)
{
    HostExecState hx;
    executeCohortHost(ctx, run, hx);
    buildCohortCommands(run, hx);
}

void
RhythmServer::executeCohortHost(CohortContext &ctx, CohortRun &run,
                                HostExecState &hx)
{
    const uint32_t type = ctx.type();
    const uint32_t n = static_cast<uint32_t>(ctx.entries().size());
    const uint32_t sample =
        config_.laneSample == 0 ? n : std::min(n, config_.laneSample);
    run.executedLanes = sample;
    run.scale = static_cast<double>(n) / sample;

    const int stages = service_.numStages(type);
    RHYTHM_ASSERT(static_cast<uint64_t>(stages) <= kTokenStageSlots);
    RHYTHM_ASSERT(sample <= kTokenLaneSlots);
    const uint32_t lane_bytes = service_.responseBufferBytes(type);

    hx.type = type;
    hx.n = n;
    hx.sample = sample;
    hx.stages = stages;
    hx.laneBytes = lane_bytes;

    CohortBufferConfig buf_cfg;
    buf_cfg.cohortSize = sample;
    buf_cfg.laneBytes = lane_bytes;
    buf_cfg.layout = config_.transposeBuffers ? BufferLayout::Transposed
                                              : BufferLayout::RowMajor;
    buf_cfg.padToWarpMax =
        config_.padResponses && config_.transposeBuffers;
    buf_cfg.warpWidth = config_.warpModel.warpWidth;
    // Per-shape buffer reuse: writers and lane storage keep their heap
    // capacity across cohorts; reset() scrubs the content. The run
    // owns the buffer (responses are zero-copy views into it) and
    // returns it to the per-shape pool after delivery.
    run.buffer = acquireBuffer(buf_cfg);
    CohortBuffer &buffer = *run.buffer;

    std::vector<std::vector<simt::ThreadTrace>> &stage_traces =
        hx.stageTraces;
    stage_traces.resize(static_cast<size_t>(stages));
    for (auto &v : stage_traces) {
        v = tracePool_.acquire();
        v.resize(sample);
    }

    run.failed.assign(sample, 0);
    uint64_t &backend_insts = hx.backendInsts;
    uint64_t &backend_calls = hx.backendCalls;

    // Cohort-level backend retry state: the budget is shared by all
    // lanes; per-stage retry rounds translate into backoff delays in
    // the simulated command sequence later.
    uint32_t retry_budget = config_.backendRetryBudget;
    hx.retryRounds.assign(static_cast<size_t>(stages), 0);
    hx.retriedCalls.assign(static_cast<size_t>(stages), 0);
    std::vector<uint32_t> &retry_rounds = hx.retryRounds;
    std::vector<uint64_t> &retried_calls = hx.retriedCalls;

    // One backend call, with transient-failure injection when a fault
    // plan is armed. A self-injecting BackendService produces the same
    // "ERR|unavailable" wire response, so both host- and device-path
    // failures funnel through the retry loop below.
    auto call_backend = [&](const std::string &request, uint64_t token,
                            simt::TraceRecorder &rec) -> std::string {
        if (faultPlan_ &&
            faultPlan_->at(fault::Site::BackendFail, queue_.now()).fire) {
            ++stats_.faultsInjected;
            OBS_INSTANT(obs::track::kEvents, "backend-fail", "fault");
            return backend::response::error(
                backend::response::kUnavailableReason);
        }
        return service_.executeBackend(request, token, rec);
    };

    // Record successful backend round trips only when the watchdog may
    // need to replay them — the default path allocates nothing.
    const bool record_backend_calls = config_.watchdogTimeout > 0;

    // Lanes whose backend calls exhausted the retry budget answer a
    // canned 503 instead of their buffer content.
    std::vector<uint8_t> unavailable(sample, 0);

    // Host-stage execution. Two structurally different but
    // output-identical drivers (DESIGN.md 6f):
    //
    //  - Lane-major (the legacy serial order): each lane runs all its
    //    stages before the next lane starts. Used when the service has
    //    not audited any stage of this type for lane parallelism —
    //    cross-lane-visible mutations then see the exact historical
    //    order.
    //
    //  - Stage-major: all lanes run stage s before any lane runs
    //    s+1. Stages the service declared lane-parallel fan out over
    //    the sim pool in lane chunks (each lane touches only its own
    //    trace slot, buffer slot and handler context); the others run
    //    serially in lane order. Backend calls and all shared-state
    //    bookkeeping (retry budget, stats) happen in a serial merge
    //    phase in canonical lane order after each stage's fork/join,
    //    so results are byte-identical at any --sim-threads.
    bool any_parallel_stage = false;
    for (int s = 0; s < stages; ++s)
        any_parallel_stage |= service_.stageIsLaneParallel(type, s);

    // Runs one (lane, stage) pair: bind the lane's recorder and writer,
    // execute the handler stage. Pure per-lane for parallel stages.
    std::vector<specweb::HandlerContext> ctxs = ctxPool_.acquire();
    ctxs.resize(sample);
    auto run_lane_stage = [&](uint32_t lane, int s) {
        specweb::HandlerContext &hctx = ctxs[lane];
        simt::RecordingTracer rec(
            stage_traces[static_cast<size_t>(s)][lane]);
        hctx.rec = &rec;
        specweb::ResponseWriter &writer = buffer.writer(lane, rec);
        hctx.out = &writer;
        service_.runStage(type, s, hctx);
    };
    // Shared-state merge for one (lane, stage): failure latching and
    // the backend round trip. Must run in canonical lane order.
    // @return false when the lane is done (failed or final stage).
    auto merge_lane_stage = [&](uint32_t lane, int s) -> bool {
        specweb::HandlerContext &hctx = ctxs[lane];
        if (hctx.failed) {
            run.failed[lane] = 1;
            return false;
        }
        if (s >= stages - 1)
            return false;
        // Idempotency token for this logical call: unique across
        // (cohort launch, stage, lane), stable across retry attempts
        // and hedge replays. Slot widths bound real configurations
        // (stages ≤ 16, cohortSize ≤ 64K).
        const uint64_t token =
            (run.seq * kTokenStageSlots + static_cast<uint64_t>(s)) *
                kTokenLaneSlots +
            lane + 1;
        simt::CountingTracer counter;
        uint32_t attempts = 0;
        std::string resp = call_backend(hctx.backendRequest, token,
                                        counter);
        while (backend::response::isUnavailable(resp) &&
               retry_budget > 0) {
            --retry_budget;
            ++attempts;
            ++stats_.backendRetries;
            resp = call_backend(hctx.backendRequest, token, counter);
        }
        backend_insts += counter.instructions();
        backend_calls += 1 + attempts;
        const size_t si = static_cast<size_t>(s);
        retry_rounds[si] = std::max(retry_rounds[si], attempts);
        retried_calls[si] += attempts;
        if (backend::response::isUnavailable(resp)) {
            // Budget exhausted: isolate the failure to this lane — it
            // answers 503 while its cohort-mates complete normally.
            run.failed[lane] = 1;
            unavailable[lane] = 1;
            ++stats_.backendFailedLanes;
            return false;
        }
        if (record_backend_calls)
            run.backendCalls.push_back({token, hctx.backendRequest, resp});
        hctx.backendResponse = std::move(resp);
        hctx.backendRequest.clear();
        return true;
    };

    for (uint32_t lane = 0; lane < sample; ++lane) {
        ctxs[lane].request = &ctx.entries()[lane].request;
        ctxs[lane].sessions = sessions_.get();
    }
    if (!any_parallel_stage) {
        for (uint32_t lane = 0; lane < sample; ++lane) {
            for (int s = 0; s < stages; ++s) {
                run_lane_stage(lane, s);
                if (!merge_lane_stage(lane, s))
                    break;
            }
        }
    } else {
        // Chunk size only affects scheduling, never results (outputs
        // are index-addressed); aim for a few chunks per worker.
        const size_t grain = std::max<size_t>(
            1, sample / (4 * util::simPool().threads()));
        std::vector<uint8_t> done(sample, 0);
        for (int s = 0; s < stages; ++s) {
            if (service_.stageIsLaneParallel(type, s)) {
                util::simPool().parallelRanges(
                    sample, grain, [&](size_t begin, size_t end) {
                        for (size_t lane = begin; lane < end; ++lane) {
                            if (!done[lane])
                                run_lane_stage(
                                    static_cast<uint32_t>(lane), s);
                        }
                    });
            } else {
                for (uint32_t lane = 0; lane < sample; ++lane) {
                    if (!done[lane])
                        run_lane_stage(lane, s);
                }
            }
            for (uint32_t lane = 0; lane < sample; ++lane) {
                if (!done[lane] && !merge_lane_stage(lane, s))
                    done[lane] = 1;
            }
        }
    }
    run.responses.resize(sample);
    for (uint32_t lane = 0; lane < sample; ++lane) {
        run.responses[lane] = unavailable[lane]
                                  ? std::string_view(
                                        kBackendUnavailableResponse)
                                  : buffer.content(lane);
    }
    ctxPool_.release(std::move(ctxs));

    // Replay the response stores with the configured layout/padding into
    // the final stage's traces.
    buffer.finalizeStores(stage_traces[static_cast<size_t>(stages - 1)]);
    run.paddingBytes = static_cast<uint64_t>(
        static_cast<double>(buffer.paddingBytes()) * run.scale);

    uint64_t content_bytes = 0;
    for (uint32_t lane = 0; lane < sample; ++lane)
        content_bytes += buffer.contentSize(lane);
    run.responseContentBytes = static_cast<uint64_t>(
        static_cast<double>(content_bytes) * run.scale);
}

void
RhythmServer::buildCohortCommands(CohortRun &run, HostExecState &hx)
{
    const uint32_t type = hx.type;
    const uint32_t n = hx.n;
    const uint32_t sample = hx.sample;
    const int stages = hx.stages;
    const uint32_t lane_bytes = hx.laneBytes;
    std::vector<std::vector<simt::ThreadTrace>> &stage_traces =
        hx.stageTraces;
    const uint64_t backend_insts = hx.backendInsts;
    const uint64_t backend_calls = hx.backendCalls;
    const std::vector<uint32_t> &retry_rounds = hx.retryRounds;
    const std::vector<uint64_t> &retried_calls = hx.retriedCalls;

    // ---- Build the simulated command sequence -----------------------
    // Profile every pipeline stage in one engine region (warps of all
    // stages share one index space, so small stages cannot strand pool
    // workers), then assemble the command sequence serially in stage
    // order — the canonical order the determinism contract requires.
    std::vector<std::vector<const simt::ThreadTrace *>> stage_ptrs(
        static_cast<size_t>(stages));
    std::vector<simt::Engine::Launch> launches(
        static_cast<size_t>(stages));
    for (int s = 0; s < stages; ++s) {
        const size_t si = static_cast<size_t>(s);
        stage_ptrs[si].resize(sample);
        for (uint32_t lane = 0; lane < sample; ++lane)
            stage_ptrs[si][lane] = &stage_traces[si][lane];
        launches[si].traces = &stage_ptrs[si];
        launches[si].model = &config_.warpModel;
        launches[si].name = std::string(service_.typeName(type)) +
                            "-stage" + std::to_string(s);
    }
    std::vector<simt::KernelProfile> stage_profiles =
        device_.engine().profileMany(launches);

    using Cmd = CohortRun::Cmd;
    const uint64_t backend_req_bytes =
        static_cast<uint64_t>(n) * service_.backendRequestSlotBytes();
    const uint64_t backend_resp_bytes =
        static_cast<uint64_t>(n) * service_.backendResponseSlotBytes();

    for (int s = 0; s < stages; ++s) {
        simt::KernelProfile profile = scaleProfile(
            std::move(stage_profiles[static_cast<size_t>(s)]), run.scale);
        stats_.processIssueSlots +=
            static_cast<double>(profile.totals.issueSlots);
        stats_.processLaneInstructions +=
            static_cast<double>(profile.totals.laneInstructions);
        run.sequence.push_back(
            Cmd{Cmd::Kind::Kernel,
                computeKernelCost(profile, device_.config()), 0, 0});

        if (s < stages - 1) {
            stats_.backendRequests += n;
            if (config_.backendOnDevice) {
                // Device-resident backend (Titan B/C): one streaming
                // kernel over the request/response records.
                const uint32_t insts_per_thread = static_cast<uint32_t>(
                    backend_calls ? backend_insts / backend_calls : 1000);
                simt::KernelProfile bp = simt::KernelProfile::streaming(
                    n, backend_req_bytes + backend_resp_bytes,
                    insts_per_thread, config_.warpModel, "backend");
                run.sequence.push_back(
                    Cmd{Cmd::Kind::Kernel,
                        computeKernelCost(bp, device_.config()), 0, 0});
            } else {
                // Host backend (Titan A): transpose → D2H → host service
                // → H2D → transpose.
                if (config_.transposeBuffers) {
                    simt::KernelProfile tp =
                        simt::KernelProfile::streaming(
                            n, 2 * backend_req_bytes,
                            kTransposeInstsPerThread, config_.warpModel,
                            "breq-transpose");
                    run.sequence.push_back(
                        Cmd{Cmd::Kind::Kernel,
                            computeKernelCost(tp, device_.config()), 0,
                            0});
                }
                run.sequence.push_back(Cmd{Cmd::Kind::CopyToHost, {},
                                           backend_req_bytes, 0});
                run.sequence.push_back(
                    Cmd{Cmd::Kind::HostDelay, {}, 0,
                        des::fromSeconds(n /
                                         config_.hostBackendReqsPerSec)});
                run.sequence.push_back(Cmd{Cmd::Kind::CopyToDevice, {},
                                           backend_resp_bytes, 0});
                if (config_.transposeBuffers) {
                    simt::KernelProfile tp =
                        simt::KernelProfile::streaming(
                            n, 2 * backend_resp_bytes,
                            kTransposeInstsPerThread, config_.warpModel,
                            "bresp-transpose");
                    run.sequence.push_back(
                        Cmd{Cmd::Kind::Kernel,
                            computeKernelCost(tp, device_.config()), 0,
                            0});
                }
            }

            // Degradation costs for this cohort-stage: an injected
            // backend brownout, exponential backoff between retry
            // rounds, and the service time of the retried calls
            // themselves. Zero on the default path, so the sequence is
            // unchanged when no faults or retries occurred.
            des::Time extra = 0;
            if (faultPlan_) {
                const fault::Decision slow =
                    faultPlan_->at(fault::Site::BackendSlow, queue_.now());
                if (slow.fire) {
                    ++stats_.faultsInjected;
                    OBS_INSTANT(obs::track::kEvents, "backend-slow",
                                "fault",
                                {"delay_us", des::toMicros(slow.delay)});
                    extra += slow.delay;
                }
            }
            const size_t si = static_cast<size_t>(s);
            for (uint32_t r = 0; r < retry_rounds[si]; ++r)
                extra += config_.retryBackoffBase
                         << std::min<uint32_t>(r, 20);
            if (retried_calls[si] > 0)
                extra += des::fromSeconds(
                    static_cast<double>(retried_calls[si]) /
                    config_.hostBackendReqsPerSec);
            if (extra > 0)
                run.sequence.push_back(
                    Cmd{Cmd::Kind::HostDelay, {}, 0, extra});
        }
    }

    // Response path: transpose back to row-major (on device unless the
    // Titan C offload handles it), then ship over PCIe if present.
    run.responseBeginIdx = run.sequence.size();
    if (config_.transposeBuffers && !config_.offloadResponseTranspose) {
        simt::KernelProfile tp = simt::KernelProfile::streaming(
            n, 2ull * lane_bytes * n, kTransposeInstsPerThread,
            config_.warpModel, "resp-transpose");
        run.sequence.push_back(Cmd{
            Cmd::Kind::Kernel, computeKernelCost(tp, device_.config()), 0,
            0});
    }
    if (config_.networkOverPcie) {
        // The paper ships the full power-of-two response buffer across
        // PCIe (26.4 KB per request on average, Section 6.1.1) — the
        // loose-fit buffer overhead visible in Figures 9 and 10. With
        // overlapPipeline the chunked DMA engines gather-scissor the
        // download to the bytes actually occupied (content plus warp-max
        // padding); the delivered responses are the same either way.
        const uint64_t loose_fit = static_cast<uint64_t>(lane_bytes) * n;
        const uint64_t ship_bytes =
            config_.overlapPipeline
                ? std::min(run.responseContentBytes + run.paddingBytes,
                           loose_fit)
                : loose_fit;
        run.sequence.push_back(
            Cmd{Cmd::Kind::CopyToHost, {}, ship_bytes, 0});
    }

    // Online fingerprint feed: every completed launch updates its
    // type's self-similarity EWMA from the stage-0 traces (tracked
    // only with fusion on; the fusion admission test reads it in O(1)).
    if (fingerprints_)
        fingerprints_->observeLaunch(
            type, std::span<const simt::ThreadTrace *const>(
                      stage_ptrs[0].data(), stage_ptrs[0].size()));

    // Occupancy accounting: the tail lanes warp-width hardware would
    // idle on each process-stage launch (executed-lane granularity).
    const uint32_t width =
        static_cast<uint32_t>(config_.warpModel.warpWidth);
    const uint64_t padded =
        static_cast<uint64_t>((sample + width - 1) / width * width -
                              sample) *
        static_cast<uint64_t>(stages);
    stats_.paddedLanes += padded;
    OBS_COUNTER_ADD("warp.fusion.padded_lanes", padded);

    // The stage profiles are value copies; recycle the trace storage.
    for (auto &v : stage_traces)
        tracePool_.release(std::move(v));
}

void
RhythmServer::buildFusedCommands(
    const std::vector<CohortContext *> &group,
    std::vector<std::shared_ptr<CohortRun>> &runs,
    std::vector<HostExecState> &states)
{
    CohortRun &leader = *runs.front();
    const int stages = states.front().stages;
    uint32_t total_sample = 0;
    uint32_t total_n = 0;
    uint64_t backend_insts = 0;
    uint64_t backend_calls = 0;
    for (const HostExecState &hx : states) {
        RHYTHM_ASSERT(hx.stages == stages);
        total_sample += hx.sample;
        total_n += hx.n;
        backend_insts += hx.backendInsts;
        backend_calls += hx.backendCalls;
    }
    // One aggregate sampling scale for the shared kernels (per-cohort
    // scales are kept on each run for its own byte accounting).
    const double scale =
        static_cast<double>(total_n) / static_cast<double>(total_sample);

    // Divergence-aware lane placement: concatenate each cohort's lanes
    // as a contiguous block, in collection order. The lockstep
    // scheduler's majority-block selection then amortizes fetches over
    // whole same-type runs and only pays divergence where the types
    // genuinely split — which is what the similarity admission test
    // predicted was cheap.
    std::vector<uint32_t> lane_tags(total_sample);
    {
        size_t off = 0;
        for (const HostExecState &hx : states) {
            std::fill(lane_tags.begin() + static_cast<long>(off),
                      lane_tags.begin() +
                          static_cast<long>(off + hx.sample),
                      hx.type);
            off += hx.sample;
        }
    }
    std::vector<std::vector<const simt::ThreadTrace *>> stage_ptrs(
        static_cast<size_t>(stages));
    std::vector<simt::Engine::Launch> launches(
        static_cast<size_t>(stages));
    std::string fused_name = "fused";
    for (const HostExecState &hx : states)
        fused_name += "+" + std::string(service_.typeName(hx.type));
    for (int s = 0; s < stages; ++s) {
        const size_t si = static_cast<size_t>(s);
        stage_ptrs[si].reserve(total_sample);
        for (HostExecState &hx : states) {
            for (uint32_t lane = 0; lane < hx.sample; ++lane)
                stage_ptrs[si].push_back(&hx.stageTraces[si][lane]);
        }
        launches[si].traces = &stage_ptrs[si];
        launches[si].model = &config_.warpModel;
        launches[si].name = fused_name + "-stage" + std::to_string(s);
        // The per-lane tag layout keys the memoization fingerprint so
        // a fused warp can never alias a single-type one.
        launches[si].laneTags = &lane_tags;
    }
    std::vector<simt::KernelProfile> stage_profiles =
        device_.engine().profileMany(launches);

    // Online fingerprint feed: each member's self similarity from its
    // own contiguous lane slice, plus the measured cross similarity of
    // adjacent members (the pairs that actually share tail warps).
    if (fingerprints_) {
        const std::span<const simt::ThreadTrace *const> all(
            stage_ptrs[0].data(), stage_ptrs[0].size());
        size_t off = 0;
        std::vector<std::pair<size_t, size_t>> slices;
        for (const HostExecState &hx : states) {
            slices.emplace_back(off, hx.sample);
            fingerprints_->observeLaunch(hx.type,
                                         all.subspan(off, hx.sample));
            off += hx.sample;
        }
        for (size_t i = 1; i < states.size(); ++i)
            fingerprints_->observePair(
                states[i - 1].type,
                all.subspan(slices[i - 1].first, slices[i - 1].second),
                states[i].type,
                all.subspan(slices[i].first, slices[i].second));
    }

    // Occupancy accounting for the fused launch: one shared tail warp
    // instead of one per cohort.
    const uint32_t width =
        static_cast<uint32_t>(config_.warpModel.warpWidth);
    auto warps_of = [&](uint32_t lanes) {
        return (lanes + width - 1) / width;
    };
    uint64_t separate_warps = 0;
    for (const HostExecState &hx : states)
        separate_warps += warps_of(hx.sample);
    const uint64_t fused_warps = warps_of(total_sample);
    const uint64_t padded =
        static_cast<uint64_t>(fused_warps * width - total_sample) *
        static_cast<uint64_t>(stages);
    const uint64_t saved =
        (separate_warps - fused_warps) * static_cast<uint64_t>(stages);
    stats_.paddedLanes += padded;
    stats_.fusionSavedWarps += saved;
    OBS_COUNTER_ADD("warp.fusion.padded_lanes", padded);
    OBS_COUNTER_ADD("warp.fusion.saved_warps", saved);

    // ---- Shared command sequence on the leader ----------------------
    // Same shape as the unfused sequence, with every per-cohort count
    // replaced by the group total: the fused kernels cover all lanes,
    // the backend trips cover all cohorts' records, and the response
    // path ships every cohort's buffer.
    using Cmd = CohortRun::Cmd;
    const uint64_t backend_req_bytes =
        static_cast<uint64_t>(total_n) *
        service_.backendRequestSlotBytes();
    const uint64_t backend_resp_bytes =
        static_cast<uint64_t>(total_n) *
        service_.backendResponseSlotBytes();

    for (int s = 0; s < stages; ++s) {
        simt::KernelProfile profile = scaleProfile(
            std::move(stage_profiles[static_cast<size_t>(s)]), scale);
        stats_.processIssueSlots +=
            static_cast<double>(profile.totals.issueSlots);
        stats_.processLaneInstructions +=
            static_cast<double>(profile.totals.laneInstructions);
        leader.sequence.push_back(
            Cmd{Cmd::Kind::Kernel,
                computeKernelCost(profile, device_.config()), 0, 0});

        if (s < stages - 1) {
            stats_.backendRequests += total_n;
            if (config_.backendOnDevice) {
                const uint32_t insts_per_thread = static_cast<uint32_t>(
                    backend_calls ? backend_insts / backend_calls : 1000);
                simt::KernelProfile bp = simt::KernelProfile::streaming(
                    total_n, backend_req_bytes + backend_resp_bytes,
                    insts_per_thread, config_.warpModel, "backend");
                leader.sequence.push_back(
                    Cmd{Cmd::Kind::Kernel,
                        computeKernelCost(bp, device_.config()), 0, 0});
            } else {
                if (config_.transposeBuffers) {
                    simt::KernelProfile tp =
                        simt::KernelProfile::streaming(
                            total_n, 2 * backend_req_bytes,
                            kTransposeInstsPerThread, config_.warpModel,
                            "breq-transpose");
                    leader.sequence.push_back(
                        Cmd{Cmd::Kind::Kernel,
                            computeKernelCost(tp, device_.config()), 0,
                            0});
                }
                leader.sequence.push_back(Cmd{Cmd::Kind::CopyToHost, {},
                                              backend_req_bytes, 0});
                leader.sequence.push_back(
                    Cmd{Cmd::Kind::HostDelay, {}, 0,
                        des::fromSeconds(total_n /
                                         config_.hostBackendReqsPerSec)});
                leader.sequence.push_back(Cmd{Cmd::Kind::CopyToDevice,
                                              {}, backend_resp_bytes,
                                              0});
                if (config_.transposeBuffers) {
                    simt::KernelProfile tp =
                        simt::KernelProfile::streaming(
                            total_n, 2 * backend_resp_bytes,
                            kTransposeInstsPerThread, config_.warpModel,
                            "bresp-transpose");
                    leader.sequence.push_back(
                        Cmd{Cmd::Kind::Kernel,
                            computeKernelCost(tp, device_.config()), 0,
                            0});
                }
            }

            // Degradation extras, one draw per member cohort per stage
            // (the same number of fault-plan consultations the unfused
            // launches would have made), plus each member's retry
            // backoff and retried-call service time.
            des::Time extra = 0;
            for (const HostExecState &hx : states) {
                if (faultPlan_) {
                    const fault::Decision slow = faultPlan_->at(
                        fault::Site::BackendSlow, queue_.now());
                    if (slow.fire) {
                        ++stats_.faultsInjected;
                        OBS_INSTANT(
                            obs::track::kEvents, "backend-slow", "fault",
                            {"delay_us", des::toMicros(slow.delay)});
                        extra += slow.delay;
                    }
                }
                const size_t si = static_cast<size_t>(s);
                for (uint32_t r = 0; r < hx.retryRounds[si]; ++r)
                    extra += config_.retryBackoffBase
                             << std::min<uint32_t>(r, 20);
                if (hx.retriedCalls[si] > 0)
                    extra += des::fromSeconds(
                        static_cast<double>(hx.retriedCalls[si]) /
                        config_.hostBackendReqsPerSec);
            }
            if (extra > 0)
                leader.sequence.push_back(
                    Cmd{Cmd::Kind::HostDelay, {}, 0, extra});
        }
    }

    // Response path: one transpose pass and one PCIe download covering
    // every member's buffer.
    leader.responseBeginIdx = leader.sequence.size();
    if (config_.transposeBuffers && !config_.offloadResponseTranspose) {
        uint64_t resp_buf_bytes = 0;
        for (const HostExecState &hx : states)
            resp_buf_bytes +=
                2ull * hx.laneBytes * static_cast<uint64_t>(hx.n);
        simt::KernelProfile tp = simt::KernelProfile::streaming(
            total_n, resp_buf_bytes, kTransposeInstsPerThread,
            config_.warpModel, "resp-transpose");
        leader.sequence.push_back(Cmd{
            Cmd::Kind::Kernel, computeKernelCost(tp, device_.config()),
            0, 0});
    }
    if (config_.networkOverPcie) {
        uint64_t ship_bytes = 0;
        for (size_t i = 0; i < states.size(); ++i) {
            const uint64_t loose_fit =
                static_cast<uint64_t>(states[i].laneBytes) * states[i].n;
            ship_bytes +=
                config_.overlapPipeline
                    ? std::min(runs[i]->responseContentBytes +
                                   runs[i]->paddingBytes,
                               loose_fit)
                    : loose_fit;
        }
        leader.sequence.push_back(
            Cmd{Cmd::Kind::CopyToHost, {}, ship_bytes, 0});
    }

    (void)group;
    for (HostExecState &hx : states) {
        for (auto &v : hx.stageTraces)
            tracePool_.release(std::move(v));
    }
}

void
RhythmServer::enqueueCohortPipeline(CohortContext &ctx,
                                    std::shared_ptr<CohortRun> run)
{
    const int stream =
        cohortStreams_[ctx.id() % cohortStreams_.size()];
    if (config_.watchdogTimeout > 0) {
        // DES-clock watchdog: if the cohort has not delivered by
        // launch + timeout, hedge it. The context reference stays
        // valid for the server's lifetime; a stale firing (cohort
        // already delivered, context possibly recycled) is a no-op
        // through the delivered/hedged guards.
        run->watchdogEvent =
            queue_.scheduleAfter(config_.watchdogTimeout,
                                 [this, &ctx, run]() {
                                     run->watchdogArmed = false;
                                     if (!run->delivered && !run->hedged)
                                         hedgeCohort(ctx, run);
                                 });
        run->watchdogArmed = true;
    }
    startCohortExec(ctx, std::move(run), stream, /*hedge=*/false);
}

void
RhythmServer::startCohortExec(CohortContext &ctx,
                              std::shared_ptr<CohortRun> run, int stream,
                              bool hedge)
{
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &ctx, run, stream, step, hedge]() {
        const std::vector<CohortRun::Cmd> &seq =
            hedge ? run->hedgeSequence : run->sequence;
        size_t &next = hedge ? run->hedgeNextCmd : run->nextCmd;
        if (!hedge && !run->delivered && OBS_ENABLED() &&
            !run->processClosed && next == run->responseBeginIdx) {
            // All process-stage commands have completed; the remaining
            // commands (if any) are the response path.
            run->processClosed = true;
            run->responseStart = queue_.now();
            OBS_SPAN_COMPLETE(
                obs::track::kCohortBase + ctx.id(), "process", "stage",
                run->launchedAt, queue_.now(),
                {"commands",
                 static_cast<uint64_t>(run->responseBeginIdx)},
                {"lanes", static_cast<uint64_t>(run->executedLanes)});
        }
        if (next >= seq.size()) {
            execCompleted(ctx, run, hedge);
            return;
        }
        const CohortRun::Cmd &cmd = seq[next++];
        switch (cmd.kind) {
          case CohortRun::Cmd::Kind::Kernel:
            device_.launchKernel(stream, cmd.cost, *step);
            break;
          case CohortRun::Cmd::Kind::CopyToHost:
            device_.copyToHost(stream, cmd.bytes, *step);
            break;
          case CohortRun::Cmd::Kind::CopyToDevice:
            device_.copyToDevice(stream, cmd.bytes, *step);
            break;
          case CohortRun::Cmd::Kind::HostDelay:
            queue_.scheduleAfter(cmd.delay, *step);
            break;
        }
    };
    (*step)();
}

void
RhythmServer::execCompleted(CohortContext &ctx,
                            const std::shared_ptr<CohortRun> &run,
                            bool hedge)
{
    if (run->delivered) {
        // The other execution won. Canonical cancellation: the loser
        // stops here without touching the context or buffer — both
        // were released at delivery and may already serve a new
        // cohort.
        ++stats_.hedgeCancelled;
        OBS_COUNTER_ADD("watchdog.hedge_cancelled", 1);
        OBS_INSTANT(obs::track::kEvents,
                    hedge ? "hedge-cancelled" : "primary-cancelled",
                    "watchdog", {"cohort", run->seq});
        return;
    }
    run->delivered = true;
    if (run->watchdogArmed) {
        // Disarm like a real watchdog: the timer dies with the cohort
        // instead of idling in the queue past the end of the run.
        queue_.cancel(run->watchdogEvent);
        run->watchdogArmed = false;
    }
    if (hedge) {
        ++stats_.hedgeWins;
        OBS_COUNTER_ADD("watchdog.hedge_wins", 1);
    }
    cohortCompleted(ctx, run);
}

void
RhythmServer::hedgeCohort(CohortContext &ctx,
                          const std::shared_ptr<CohortRun> &run)
{
    run->hedged = true;
    ++stats_.watchdogFires;
    OBS_COUNTER_ADD("watchdog.fires", 1);
    OBS_INSTANT(obs::track::kEvents, "watchdog-hedge", "watchdog",
                {"cohort", run->seq},
                {"ctx", static_cast<uint64_t>(ctx.id())});

    // Exactly-once backend replay: with an idempotency layer attached,
    // re-issuing the recorded calls is safe — mutating operations
    // deduplicate against their journaled responses (no double-apply,
    // no retry-budget spend) and guarantee the hedge observes the
    // primary's outcomes even if the backend crashed and recovered in
    // between. Reads simply re-execute; a mismatch against the
    // primary's response is counted but never delivered (the primary's
    // buffer is the one that ships). Without the layer the device-side
    // re-execution alone is hedged and the backend is left untouched.
    if (service_.backendExactlyOnce()) {
        for (const CohortRun::BackendCall &call : run->backendCalls) {
            const std::string resp =
                service_.executeBackend(call.request, call.token, gNull);
            ++stats_.hedgeReplayedCalls;
            OBS_COUNTER_ADD("watchdog.replayed_calls", 1);
            if (resp != call.response) {
                ++stats_.hedgeReplayMismatches;
                OBS_COUNTER_ADD("watchdog.replay_mismatches", 1);
            }
        }
    }

    // Device-side re-execution: the primary's sequence minus any
    // injected hang, on the context's dedicated hedge stream. The
    // hedge draws its own hang decision — a hedge can hang too; the
    // primary then usually finishes first and the hedge is cancelled.
    run->hedgeSequence.clear();
    run->hedgeSequence.reserve(run->sequence.size());
    for (const CohortRun::Cmd &cmd : run->sequence) {
        if (!cmd.hang)
            run->hedgeSequence.push_back(cmd);
    }
    maybeInjectHang(*run, /*hedge=*/true);
    run->hedgeNextCmd = 0;
    const int stream = hedgeStreams_[ctx.id() % hedgeStreams_.size()];
    startCohortExec(ctx, run, stream, /*hedge=*/true);
}

void
RhythmServer::deliverRun(CohortContext &ctx, CohortRun &run,
                         des::Time now)
{
    const auto &entries = ctx.entries();
    stats_.responseBytes += run.responseContentBytes;
    stats_.paddingBytes += run.paddingBytes;
    if (OBS_ENABLED()) {
        if (!run.processClosed) {
            run.processClosed = true;
            run.responseStart = now;
            OBS_SPAN_COMPLETE(obs::track::kCohortBase + ctx.id(),
                              "process", "stage", run.launchedAt, now);
        }
        OBS_SPAN_COMPLETE(obs::track::kCohortBase + ctx.id(), "response",
                          "stage", run.responseStart, now,
                          {"bytes", run.responseContentBytes},
                          {"padding_bytes", run.paddingBytes});
    }
    for (size_t i = 0; i < entries.size(); ++i) {
        const bool executed = i < run.executedLanes;
        const bool failed = executed && run.failed[i] != 0;
        stats_.formationMs.add(
            des::toMillis(run.launchedAt - entries[i].arrival));
        stats_.pipelineMs.add(des::toMillis(now - run.launchedAt));
        OBS_HIST_ADD("server.formation_ms",
                     des::toMillis(run.launchedAt - entries[i].arrival));
        OBS_HIST_ADD("server.pipeline_ms",
                     des::toMillis(now - run.launchedAt));
        completeRequest(entries[i].clientId,
                        executed ? run.responses[i] : std::string_view(),
                        now - entries[i].arrival, failed, ctx.type());
    }
    if (config_.adaptiveBatching) {
        // Feed the slack model: pipeline (launch→response) time per
        // cohort of this type, plus the lane-count EWMA the admission
        // test turns into a drain rate.
        const double pipeline_ms = des::toMillis(now - run.launchedAt);
        if (ctx.type() < typeCostMs_.size())
            typeCostMs_[ctx.type()].add(pipeline_ms);
        aggCostMs_.add(pipeline_ms);
        OBS_GAUGE_SET("adaptive.cost_estimate_ms", aggCostMs_.value());
    }
    // Delivery done: the response views are dead, so the buffer can go
    // back to the per-shape pool for the next cohort of this shape.
    run.responses.clear();
    releaseBuffer(std::move(run.buffer));
    ctx.release();
}

void
RhythmServer::cohortCompleted(CohortContext &ctx,
                              const std::shared_ptr<CohortRun> &run)
{
    const des::Time now = queue_.now();
    deliverRun(ctx, *run, now);
    // A fused leader's command sequence covered its followers' lanes
    // too: the shared pipeline finishing means every member cohort's
    // responses are ready at the same simulated instant.
    for (CohortRun::Follower &f : run->followers)
        deliverRun(*f.ctx, *f.run, now);
    run->followers.clear();
    drainDispatch();
    pump();
}

std::unique_ptr<CohortBuffer>
RhythmServer::acquireBuffer(const CohortBufferConfig &cfg)
{
    // The pool key is (cohort size, lane bytes) — every other config
    // field is fixed for the server's lifetime, so a recycled buffer's
    // construction config matches cfg exactly.
    auto &free_list = bufferPool_[{cfg.cohortSize, cfg.laneBytes}];
    if (!free_list.empty()) {
        std::unique_ptr<CohortBuffer> buffer =
            std::move(free_list.back());
        free_list.pop_back();
        buffer->reset();
        return buffer;
    }
    return std::make_unique<CohortBuffer>(cfg);
}

void
RhythmServer::releaseBuffer(std::unique_ptr<CohortBuffer> buffer)
{
    if (!buffer)
        return;
    auto &free_list = bufferPool_[{buffer->config().cohortSize,
                                   buffer->config().laneBytes}];
    // At most one buffer per in-flight cohort context can be live, so
    // the free list never needs to hold more than that.
    if (free_list.size() < config_.cohortContexts)
        free_list.push_back(std::move(buffer));
}

uint64_t
RhythmServer::memoryFootprintBytes() const
{
    // Session array + per-context preallocated pools: request slots,
    // the largest response buffer, backend request/response slots and
    // a transpose staging buffer (Section 6.3).
    uint64_t max_buffer = 0;
    for (uint32_t i = 0; i < service_.numTypes(); ++i)
        max_buffer =
            std::max<uint64_t>(max_buffer, service_.responseBufferBytes(i));
    const uint64_t per_context =
        static_cast<uint64_t>(config_.cohortSize) *
        (config_.requestSlotBytes + max_buffer * 2 +
         service_.backendRequestSlotBytes() +
         service_.backendResponseSlotBytes());
    return sessions_->footprintBytes() +
           per_context * config_.cohortContexts;
}

} // namespace rhythm::core
