#include "rhythm/buffers.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhythm::core {
namespace {

/** Block ids for the buffer machinery. */
enum BufferBlock : uint32_t {
    kBlockStorePass = 5100,  //!< Replayed store of one append.
    kBlockPadReduce = 5101,  //!< Warp butterfly max-reduction.
    kBlockPatch = 5102,      //!< Content-Length back-patch store.
};

/** Instruction weight of a warp butterfly max reduction (log2(32) steps
 *  of shuffle+max through shared memory, Section 4.6). */
constexpr uint32_t kReduceInsts = 30;

} // namespace

/**
 * Per-lane ResponseWriter view over the cohort buffer. Generation work
 * (instructions, source reads) is charged at append time; stores are
 * replayed with layout and padding by CohortBuffer::finalizeStores().
 * The content bytes land directly in the lane's arena slot (zero-copy);
 * distinct lanes write disjoint slots, so writers of different lanes
 * may run on different pool workers concurrently.
 */
class LaneWriter : public specweb::ResponseWriter
{
  public:
    LaneWriter(CohortBuffer &parent, uint32_t lane)
        : parent_(parent), lane_(lane)
    {
    }

    /** Rebinds the recorder charged for generation work. */
    void bind(simt::TraceRecorder &rec) { rec_ = &rec; }

    void
    appendStatic(uint32_t block_id, std::string_view text) override
    {
        charge(block_id, text.size(), false);
        write(text.data(), text.size());
    }

    void
    appendDynamic(uint32_t block_id, std::string_view text) override
    {
        charge(block_id, text.size(), true);
        write(text.data(), text.size());
    }

    size_t
    reserve(uint32_t block_id, size_t width) override
    {
        auto &lane = parent_.lanes_[lane_];
        const size_t offset = lane.size;
        charge(block_id, width, false);
        writeSpaces(width);
        return offset;
    }

    void
    patch(size_t offset, std::string_view text) override
    {
        auto &lane = parent_.lanes_[lane_];
        RHYTHM_ASSERT(offset + text.size() <= lane.size,
                      "patch outside reservation");
        rec_->block(kBlockPatch, 24);
        if (lane.spilled)
            lane.spill.replace(offset, text.size(), text);
        else
            std::memcpy(parent_.slot(lane_) + offset, text.data(),
                        text.size());
    }

    size_t
    size() const override
    {
        return parent_.lanes_[lane_].size;
    }

  private:
    /** Records the generation instructions and source reads of one
     *  append, before the content bytes are written. */
    void
    charge(uint32_t block_id, size_t bytes, bool dynamic)
    {
        RHYTHM_ASSERT(rec_, "writer used before bind()");
        auto &lane = parent_.lanes_[lane_];
        lane.used = true;
        rec_->block(block_id,
                    16 + static_cast<uint32_t>(bytes) *
                             parent_.config_.instsPerByte);
        const uint32_t words = static_cast<uint32_t>((bytes + 3) / 4);
        if (words > 0) {
            if (dynamic) {
                // Dynamic source (backend response region): laid out with
                // the same cohort geometry as the response buffers.
                const uint64_t src =
                    parent_.elementAddr(lane_, lane.size) + 0x4000'0000;
                const uint32_t stride =
                    parent_.config_.layout == BufferLayout::Transposed
                        ? parent_.config_.cohortSize * 4
                        : 4;
                rec_->load(src, words, stride, 4);
            } else {
                // Static template content lives in constant memory.
                rec_->load(0x1000 + block_id * 4096, words, 4, 4,
                           simt::MemSpace::Constant);
            }
        }
        lane.appends.push_back(
            CohortBuffer::Append{block_id,
                                 static_cast<uint32_t>(bytes)});
    }

    /** Appends raw bytes into the slot (or the spill fallback). */
    void
    write(const char *data, size_t len)
    {
        auto &lane = parent_.lanes_[lane_];
        if (!lane.spilled) {
            if (lane.size + len <= parent_.config_.laneBytes) {
                std::memcpy(parent_.slot(lane_) + lane.size, data, len);
                lane.size += static_cast<uint32_t>(len);
                return;
            }
            spillOut(lane);
        }
        lane.spill.append(data, len);
        lane.size += static_cast<uint32_t>(len);
    }

    /** Appends whitespace word-at-a-time (no temporary string). */
    void
    writeSpaces(size_t len)
    {
        auto &lane = parent_.lanes_[lane_];
        if (!lane.spilled) {
            if (lane.size + len <= parent_.config_.laneBytes) {
                std::memset(parent_.slot(lane_) + lane.size, ' ', len);
                lane.size += static_cast<uint32_t>(len);
                return;
            }
            spillOut(lane);
        }
        lane.spill.append(len, ' ');
        lane.size += static_cast<uint32_t>(len);
    }

    /** Migrates a lane that outgrew its slot onto the heap. */
    void
    spillOut(CohortBuffer::Lane &lane)
    {
        lane.spill.assign(parent_.slot(lane_), lane.size);
        lane.spilled = true;
    }

    CohortBuffer &parent_;
    uint32_t lane_;
    simt::TraceRecorder *rec_ = nullptr;
};

CohortBuffer::CohortBuffer(const CohortBufferConfig &config)
    : config_(config),
      arena_(static_cast<size_t>(config.cohortSize) * config.laneBytes),
      lanes_(config.cohortSize)
{
    RHYTHM_ASSERT(config.cohortSize > 0 && config.laneBytes > 0);
    RHYTHM_ASSERT(config.warpWidth > 0);
    slots_ = arena_.alloc(static_cast<size_t>(config.cohortSize) *
                          config.laneBytes);
    writers_.reserve(config.cohortSize);
    for (uint32_t l = 0; l < config.cohortSize; ++l)
        writers_.push_back(std::make_unique<LaneWriter>(*this, l));
}

char *
CohortBuffer::slot(uint32_t lane)
{
    return slots_ + static_cast<size_t>(lane) * config_.laneBytes;
}

const char *
CohortBuffer::slot(uint32_t lane) const
{
    return slots_ + static_cast<size_t>(lane) * config_.laneBytes;
}

specweb::ResponseWriter &
CohortBuffer::writer(uint32_t lane, simt::TraceRecorder &rec)
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    auto *w = static_cast<LaneWriter *>(writers_[lane].get());
    w->bind(rec);
    return *w;
}

std::string_view
CohortBuffer::content(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    const Lane &l = lanes_[lane];
    if (l.spilled)
        return l.spill;
    return std::string_view(slot(lane), l.size);
}

size_t
CohortBuffer::contentSize(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].size;
}

bool
CohortBuffer::spilled(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].spilled;
}

uint64_t
CohortBuffer::elementAddr(uint32_t lane, size_t offset) const
{
    if (config_.layout == BufferLayout::Transposed) {
        // 4-byte elements interleaved across the cohort: element e of
        // lane l lives at base + e*cohortSize*4 + l*4.
        return transposedRegionAddr(config_.deviceBase, lane, offset,
                                    config_.cohortSize);
    }
    return config_.deviceBase +
           static_cast<uint64_t>(lane) * config_.laneBytes + offset;
}

void
CohortBuffer::finalizeStores(std::vector<simt::ThreadTrace> &traces)
{
    RHYTHM_ASSERT(traces.size() >= lanes_.size(),
                  "trace vector smaller than cohort");
    const uint32_t width = static_cast<uint32_t>(config_.warpWidth);
    const uint32_t n = static_cast<uint32_t>(lanes_.size());
    const size_t warps = (n + width - 1) / width;

    auto emit = [&](uint32_t lane, uint32_t block_id, uint32_t insts,
                    size_t offset, uint32_t bytes) {
        simt::ThreadTrace &t = traces[lane];
        t.blocks.push_back(simt::BlockExec{
            block_id, insts, static_cast<uint32_t>(t.memOps.size()), 0});
        if (bytes > 0) {
            simt::MemOp op;
            op.addr = elementAddr(lane, offset);
            op.count = (bytes + 3) / 4;
            op.stride = config_.layout == BufferLayout::Transposed
                            ? config_.cohortSize * 4
                            : 4;
            op.width = 4;
            op.space = simt::MemSpace::Global;
            op.isStore = true;
            t.memOps.push_back(op);
            ++t.blocks.back().memCount;
        }
    };

    // Warps are independent (each touches only its own lanes' traces
    // and Lane records), so the replay fans out over the sim pool; the
    // shared padding/overflow totals come from per-warp slots reduced
    // in canonical warp order below — byte-identical at any thread
    // count.
    std::vector<uint64_t> warp_padding(warps, 0);
    std::vector<uint8_t> warp_overflow(warps, 0);
    util::simPool().parallelRanges(
        warps, 1, [&](size_t wbegin, size_t wend) {
            for (size_t w = wbegin; w < wend; ++w) {
                const uint32_t base = static_cast<uint32_t>(w) * width;
                const uint32_t warp_lanes = std::min(width, n - base);
                size_t max_appends = 0;
                for (uint32_t l = 0; l < warp_lanes; ++l) {
                    if (lanes_[base + l].used)
                        max_appends =
                            std::max(max_appends,
                                     lanes_[base + l].appends.size());
                }
                std::vector<size_t> offsets(warp_lanes, 0);
                for (size_t j = 0; j < max_appends; ++j) {
                    // Warp-max padded length (butterfly reduction on
                    // device).
                    uint32_t max_len = 0;
                    for (uint32_t l = 0; l < warp_lanes; ++l) {
                        const Lane &lane = lanes_[base + l];
                        if (lane.used && j < lane.appends.size())
                            max_len = std::max(max_len,
                                               lane.appends[j].length);
                    }
                    for (uint32_t l = 0; l < warp_lanes; ++l) {
                        Lane &lane = lanes_[base + l];
                        if (!lane.used || j >= lane.appends.size())
                            continue;
                        const uint32_t own = lane.appends[j].length;
                        const uint32_t stored =
                            config_.padToWarpMax ? max_len : own;
                        const uint32_t insts =
                            20 + stored * 2 +
                            (config_.padToWarpMax ? kReduceInsts : 0);
                        emit(base + l, kBlockStorePass, insts,
                             offsets[l], stored);
                        if (config_.padToWarpMax)
                            warp_padding[w] += stored - own;
                        offsets[l] += stored;
                    }
                }
                for (uint32_t l = 0; l < warp_lanes; ++l) {
                    Lane &lane = lanes_[base + l];
                    if (!lane.used)
                        continue;
                    lane.paddedSize = offsets[l];
                    if (offsets[l] > config_.laneBytes)
                        warp_overflow[w] = 1;
                }
            }
        });
    for (size_t w = 0; w < warps; ++w) {
        paddingBytes_ += warp_padding[w];
        if (warp_overflow[w])
            overflowed_ = true;
    }
}

size_t
CohortBuffer::paddedSize(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].paddedSize;
}

double
CohortBuffer::bufferUtilization() const
{
    uint64_t content = 0;
    uint64_t allocated = 0;
    for (const Lane &lane : lanes_) {
        if (!lane.used)
            continue;
        content += lane.size;
        allocated += config_.laneBytes;
    }
    return allocated == 0
               ? 0.0
               : static_cast<double>(content) /
                     static_cast<double>(allocated);
}

void
transposeRegionLoads(simt::ThreadTrace &trace, uint64_t region_base,
                     uint32_t lane, uint32_t slot_bytes, uint32_t cohort)
{
    const uint64_t lane_base =
        region_base + static_cast<uint64_t>(lane) * slot_bytes;
    for (simt::MemOp &op : trace.memOps) {
        if (op.isStore || op.addr < lane_base ||
            op.addr >= lane_base + slot_bytes)
            continue;
        op.addr = transposedRegionAddr(region_base, lane,
                                       op.addr - lane_base, cohort);
        op.stride = cohort * 4;
    }
}

void
untransposeRegionLoads(simt::ThreadTrace &trace, uint64_t region_base,
                       uint32_t lane, uint32_t slot_bytes, uint32_t cohort)
{
    const uint64_t lane_base =
        region_base + static_cast<uint64_t>(lane) * slot_bytes;
    const uint64_t region_bytes =
        static_cast<uint64_t>(slot_bytes) * cohort;
    for (simt::MemOp &op : trace.memOps) {
        if (op.isStore || op.addr < region_base ||
            op.addr >= region_base + region_bytes)
            continue;
        const uint64_t toff = op.addr - region_base;
        const uint64_t element = toff / (cohort * 4ull);
        const uint64_t within = toff % (cohort * 4ull);
        if (within / 4 != lane)
            continue; // another lane's interleaved element
        op.addr = lane_base + element * 4 + within % 4;
        op.stride = 4;
    }
}

void
CohortBuffer::reset()
{
    arena_.reset();
    slots_ = arena_.alloc(static_cast<size_t>(config_.cohortSize) *
                          config_.laneBytes);
    for (Lane &lane : lanes_) {
        lane.size = 0;
        lane.appends.clear();
        lane.paddedSize = 0;
        lane.used = false;
        if (lane.spilled) {
            lane.spilled = false;
            lane.spill.clear();
            lane.spill.shrink_to_fit();
        }
    }
    paddingBytes_ = 0;
    overflowed_ = false;
}

} // namespace rhythm::core
