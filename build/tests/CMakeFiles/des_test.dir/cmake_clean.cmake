file(REMOVE_RECURSE
  "CMakeFiles/des_test.dir/des_test.cc.o"
  "CMakeFiles/des_test.dir/des_test.cc.o.d"
  "des_test"
  "des_test.pdb"
  "des_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
