#include "simt/warp.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"

namespace rhythm::simt {
namespace {

/**
 * Fixed-capacity u64 buffer that spills to the heap instead of
 * dropping values. The inline array covers the hot path (a warp's
 * lanes, narrow accesses) allocation-free; wide accesses that straddle
 * many segments overflow into the vector and are merged before use, so
 * counts stay exact instead of silently truncating.
 */
template <size_t N>
class SpillBuf
{
  public:
    void push(uint64_t v)
    {
        if (n_ < N)
            inline_[n_++] = v;
        else
            spill_.push_back(v);
    }

    /** Contiguous view of all values (merges the spill if engaged). */
    std::span<uint64_t> values()
    {
        if (spill_.empty())
            return std::span<uint64_t>(inline_.data(), n_);
        spill_.insert(spill_.end(), inline_.begin(), inline_.begin() + n_);
        n_ = 0;
        return std::span<uint64_t>(spill_);
    }

  private:
    std::array<uint64_t, N> inline_;
    std::vector<uint64_t> spill_;
    size_t n_ = 0;
};

} // namespace

void
WarpStats::merge(const WarpStats &other)
{
    issueSlots += other.issueSlots;
    laneInstructions += other.laneInstructions;
    steps += other.steps;
    laneBlockExecs += other.laneBlockExecs;
    activeLaneSteps += other.activeLaneSteps;
    globalTransactions += other.globalTransactions;
    globalBytes += other.globalBytes;
    sharedAccesses += other.sharedAccesses;
    sharedReplaySlots += other.sharedReplaySlots;
    constantAccesses += other.constantAccesses;
}

double
WarpStats::simdEfficiency(int warp_width) const
{
    if (issueSlots == 0)
        return 0.0;
    return static_cast<double>(laneInstructions) /
           (static_cast<double>(issueSlots) * warp_width);
}

uint64_t
WarpStats::movedBytes(uint32_t segment_bytes) const
{
    return globalTransactions * segment_bytes;
}

double
WarpStats::coalescingEfficiency(uint32_t segment_bytes) const
{
    const uint64_t moved = movedBytes(segment_bytes);
    if (moved == 0)
        return 0.0;
    return static_cast<double>(globalBytes) / static_cast<double>(moved);
}

uint32_t
coalesceTransactions(std::span<const uint64_t> addrs, uint16_t width,
                     uint32_t segment_bytes)
{
    RHYTHM_ASSERT(segment_bytes > 0);
    // Collect the segment indices touched by every lane's access (an
    // access can straddle a segment boundary), then count distinct
    // ones. Wide accesses can touch far more segments than lanes, so
    // the collection spills to the heap instead of capping the count.
    SpillBuf<128> segments;
    for (uint64_t addr : addrs) {
        const uint64_t first = addr / segment_bytes;
        const uint64_t last = (addr + width - 1) / segment_bytes;
        for (uint64_t seg = first; seg <= last; ++seg)
            segments.push(seg);
    }
    const std::span<uint64_t> vals = segments.values();
    std::sort(vals.begin(), vals.end());
    const auto end = std::unique(vals.begin(), vals.end());
    return static_cast<uint32_t>(end - vals.begin());
}

uint32_t
sharedBankReplays(std::span<const uint64_t> addrs)
{
    // Count distinct addresses per bank; replays = worst bank - 1.
    // Warps wider than 64 lanes spill rather than dropping addresses.
    SpillBuf<64> sorted;
    for (uint64_t addr : addrs)
        sorted.push(addr);
    const std::span<uint64_t> vals = sorted.values();
    std::sort(vals.begin(), vals.end());
    const auto end = std::unique(vals.begin(), vals.end());

    std::array<uint32_t, 32> bank_counts{};
    uint32_t worst = 1;
    for (auto it = vals.begin(); it != end; ++it) {
        const uint32_t bank = static_cast<uint32_t>((*it / 4) % 32);
        worst = std::max(worst, ++bank_counts[bank]);
    }
    return worst - 1;
}

namespace {

/**
 * Coalesces one aligned group memory operation: the lanes in @p group all
 * issued the MemOp at the same program point. Element i of lane l touches
 * address op.addr + i * op.stride; the coalescer merges lanes at each
 * element index. No inter-element DRAM reuse is assumed (Kepler-style
 * uncached global accesses), which is precisely what makes the row-major
 * layout expensive and motivates the buffer transpose (Section 4.3.2).
 */
void
coalesceGroupOp(std::span<const MemOp *const> ops, const WarpModel &model,
                WarpStats &stats)
{
    // Non-global spaces have no DRAM traffic; account and return.
    const MemSpace space = ops[0]->space;
    bool uniform_space = true;
    for (const MemOp *op : ops) {
        if (op->space != space)
            uniform_space = false;
    }

    if (uniform_space && space == MemSpace::Shared) {
        uint32_t max_count = 0;
        for (const MemOp *op : ops) {
            stats.sharedAccesses += op->count;
            max_count = std::max(max_count, op->count);
        }
        // Bank conflicts serialize the access into replays. The lane
        // buffer sizes to the group (one slot per op), so warp models
        // wider than the inline capacity stay exact.
        std::array<uint64_t, 64> inline_addrs;
        std::vector<uint64_t> heap_addrs;
        uint64_t *addrs = inline_addrs.data();
        if (ops.size() > inline_addrs.size()) {
            heap_addrs.resize(ops.size());
            addrs = heap_addrs.data();
        }
        for (uint32_t i = 0; i < max_count; ++i) {
            size_t n = 0;
            for (const MemOp *op : ops) {
                if (i < op->count)
                    addrs[n++] = op->addr +
                                 static_cast<uint64_t>(i) * op->stride;
            }
            stats.sharedReplaySlots += sharedBankReplays(
                std::span<const uint64_t>(addrs, n));
        }
        return;
    }
    if (uniform_space && space == MemSpace::Constant) {
        for (const MemOp *op : ops)
            stats.constantAccesses += op->count;
        return;
    }

    uint32_t max_count = 0;
    for (const MemOp *op : ops) {
        if (op->space == MemSpace::Global) {
            stats.globalBytes +=
                static_cast<uint64_t>(op->count) * op->width;
            max_count = std::max(max_count, op->count);
        }
    }
    if (max_count == 0)
        return;

    // Detect the uniform pattern (same count/stride/width, arithmetic
    // lane bases): closed-form evaluation using a sampled window, exact
    // otherwise. The sampled window is exact whenever the per-element
    // segment pattern is periodic, which holds for arithmetic sequences.
    bool uniform = ops.size() > 1;
    for (const MemOp *op : ops) {
        if (op->space != MemSpace::Global || op->count != ops[0]->count ||
            op->stride != ops[0]->stride || op->width != ops[0]->width)
            uniform = false;
    }

    // One address slot per lane of the group; spill to the heap for
    // warp models wider than the inline capacity.
    std::array<uint64_t, 64> inline_addrs;
    std::vector<uint64_t> heap_addrs;
    uint64_t *addrs = inline_addrs.data();
    if (ops.size() > inline_addrs.size()) {
        heap_addrs.resize(ops.size());
        addrs = heap_addrs.data();
    }
    const uint32_t kExactLimit = 4096;

    if (uniform && max_count > kExactLimit) {
        // Sample a window of elements and extrapolate; the pattern of
        // segment counts repeats with period lcm(segment, stride)/stride
        // which the 128-element window covers for power-of-two strides.
        const uint32_t window = 128;
        uint64_t window_txns = 0;
        for (uint32_t i = 0; i < window; ++i) {
            size_t n = 0;
            for (const MemOp *op : ops)
                addrs[n++] = op->addr + static_cast<uint64_t>(i) * op->stride;
            window_txns += coalesceTransactions(
                std::span<const uint64_t>(addrs, n), ops[0]->width,
                model.segmentBytes);
        }
        stats.globalTransactions +=
            window_txns * max_count / window +
            ((window_txns * max_count) % window ? 1 : 0);
        return;
    }

    for (uint32_t i = 0; i < max_count; ++i) {
        size_t n = 0;
        uint16_t width = 4;
        for (const MemOp *op : ops) {
            if (op->space == MemSpace::Global && i < op->count) {
                addrs[n++] = op->addr + static_cast<uint64_t>(i) * op->stride;
                width = op->width;
            }
        }
        if (n == 0)
            continue;
        stats.globalTransactions += coalesceTransactions(
            std::span<const uint64_t>(addrs, n), width,
            model.segmentBytes);
    }
}

/**
 * Shared lockstep scheduler. The @p kMemOps = false instantiation skips
 * the per-group memory-op alignment loop (the only consumer of MemOp
 * data), so the control-flow fields it produces are bit-equal to the
 * full simulation's by construction: the scheduler itself never
 * consults memOps.
 */
template <bool kMemOps>
WarpStats
simulateWarpImpl(std::span<const ThreadTrace *const> lanes,
                 const WarpModel &model)
{
    RHYTHM_ASSERT(static_cast<int>(lanes.size()) <= model.warpWidth,
                  "more lanes than the warp width");

    WarpStats stats;
    const size_t n = lanes.size();
    std::vector<size_t> pos(n, 0);
    std::vector<size_t> group;
    std::vector<const MemOp *> group_ops;
    group.reserve(n);

    for (size_t l = 0; l < n; ++l) {
        if (lanes[l]) {
            stats.laneBlockExecs += lanes[l]->blocks.size();
            stats.laneInstructions += lanes[l]->totalInstructions();
        }
    }

    // Sliding-window multiset of upcoming block ids per lane, covering
    // trace entries [pos+1, pos+reconvergenceWindow]. Used to detect
    // future merge points: a front block that another lane will reach
    // soon is deferred so the lanes can reconverge there (approximating
    // stack-based reconvergence on structured control flow).
    const size_t window = model.reconvergenceWindow;
    std::vector<std::unordered_map<uint32_t, uint32_t>> future(n);
    for (size_t l = 0; l < n; ++l) {
        if (!lanes[l])
            continue;
        const size_t limit = std::min(lanes[l]->blocks.size(), 1 + window);
        for (size_t k = 1; k < limit; ++k)
            ++future[l][lanes[l]->blocks[k].blockId];
    }
    auto advance_lane = [&](size_t l) {
        const size_t p = pos[l];
        const auto &blocks = lanes[l]->blocks;
        if (p + 1 < blocks.size()) {
            auto it = future[l].find(blocks[p + 1].blockId);
            if (it != future[l].end() && --it->second == 0)
                future[l].erase(it);
        }
        if (p + 1 + window < blocks.size())
            ++future[l][blocks[p + 1 + window].blockId];
        pos[l] = p + 1;
    };
    // True if any lane not currently at @p id will reach it soon.
    auto shared_in_future = [&](uint32_t id) {
        for (size_t m = 0; m < n; ++m) {
            if (!lanes[m] || pos[m] >= lanes[m]->blocks.size())
                continue;
            if (lanes[m]->blocks[pos[m]].blockId == id)
                continue; // lane is already at the block
            if (future[m].contains(id))
                return true;
        }
        return false;
    };

    for (;;) {
        // Candidate = a distinct front block. Selection priority:
        //  1. divergent-only blocks (no other lane will reach them soon)
        //     run first, so lanes do not execute past a merge point;
        //  2. larger lane count (amortize the fetch over more lanes);
        //  3. lowest id (determinism).
        uint32_t best_id = 0;
        size_t best_count = 0;
        bool best_shared = true;
        bool best_valid = false;
        for (size_t l = 0; l < n; ++l) {
            if (!lanes[l] || pos[l] >= lanes[l]->blocks.size())
                continue;
            const uint32_t id = lanes[l]->blocks[pos[l]].blockId;
            if (best_valid && id == best_id)
                continue;
            size_t count = 0;
            for (size_t m = 0; m < n; ++m) {
                if (lanes[m] && pos[m] < lanes[m]->blocks.size() &&
                    lanes[m]->blocks[pos[m]].blockId == id)
                    ++count;
            }
            const bool shared = shared_in_future(id);
            bool better = false;
            if (!best_valid) {
                better = true;
            } else if (shared != best_shared) {
                better = !shared;
            } else if (count != best_count) {
                better = count > best_count;
            } else {
                better = id < best_id;
            }
            if (better) {
                best_count = count;
                best_id = id;
                best_shared = shared;
                best_valid = true;
            }
        }
        if (!best_valid)
            break;

        group.clear();
        uint32_t max_insts = 0;
        uint32_t max_ops = 0;
        for (size_t l = 0; l < n; ++l) {
            if (lanes[l] && pos[l] < lanes[l]->blocks.size() &&
                lanes[l]->blocks[pos[l]].blockId == best_id) {
                group.push_back(l);
                const BlockExec &be = lanes[l]->blocks[pos[l]];
                max_insts = std::max(max_insts, be.instructions);
                max_ops = std::max(max_ops, be.memCount);
            }
        }

        // One fetch/issue sequence covers the whole group; lanes with
        // shorter dynamic weights are predicated off for the tail.
        stats.issueSlots += max_insts;
        stats.steps += 1;
        stats.activeLaneSteps += group.size();

        // Align memory ops by index within the block across the group.
        if constexpr (kMemOps) {
            for (uint32_t j = 0; j < max_ops; ++j) {
                group_ops.clear();
                for (size_t l : group) {
                    const BlockExec &be = lanes[l]->blocks[pos[l]];
                    if (j < be.memCount)
                        group_ops.push_back(
                            &lanes[l]->memOps[be.memBegin + j]);
                }
                if (!group_ops.empty())
                    coalesceGroupOp(std::span<const MemOp *const>(
                                        group_ops.data(), group_ops.size()),
                                    model, stats);
            }
        } else {
            (void)max_ops;
        }

        for (size_t l : group)
            advance_lane(l);
    }

    return stats;
}

} // namespace

WarpStats
simulateWarp(std::span<const ThreadTrace *const> lanes,
             const WarpModel &model)
{
    return simulateWarpImpl<true>(lanes, model);
}

WarpStats
mergeBlockSchedule(std::span<const ThreadTrace *const> lanes,
                   const WarpModel &model)
{
    return simulateWarpImpl<false>(lanes, model);
}

} // namespace rhythm::simt
