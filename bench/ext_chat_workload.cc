/**
 * @file
 * Extension experiment (paper Section 8): the Chat workload on Rhythm
 * (Titan B). Chat inverts the Banking profile — the dominant page type
 * (poll) is tiny and mutations (posts) are frequent — probing the
 * pipeline's behaviour with short cohorts and concurrent writes.
 */

#include <iostream>

#include "bench/common.hh"
#include "chat/service.hh"
#include "des/event_queue.hh"
#include "rhythm/server.hh"
#include "util/stats.hh"

namespace {

using namespace rhythm;

struct RunResult
{
    double throughput;
    double latencyMs;
    double simdEff;
    uint64_t posted;
};

RunResult
runIsolated(chat::RoomStore &store, chat::PageType type, uint32_t cohorts,
            const bench::FaultFlags &faults,
            const bench::OverlapFlags &overlap)
{
    des::EventQueue queue;
    simt::DeviceConfig dcfg;
    faults.apply(dcfg);
    overlap.apply(dcfg);
    simt::Device device(queue, dcfg);
    chat::ChatService service(store);

    core::RhythmConfig cfg;
    cfg.cohortSize = 4096;
    cfg.cohortContexts = 8;
    cfg.cohortTimeout = 2 * des::kMillisecond;
    cfg.backendOnDevice = true; // Titan B
    cfg.networkOverPcie = false;
    cfg.laneSample = 128;
    faults.apply(cfg);
    overlap.apply(cfg);
    core::RhythmServer server(queue, device, service, cfg);
    std::optional<fault::FaultPlan> plan;
    faults.arm(server, device, queue, plan);

    chat::ChatGenerator gen(store, 29);
    const uint64_t total = static_cast<uint64_t>(cohorts) * cfg.cohortSize;
    const uint64_t posted_before = store.totalPosted();
    uint64_t issued = 0;
    server.start([&]() -> std::optional<std::string> {
        if (issued >= total)
            return std::nullopt;
        ++issued;
        return gen.generate(type);
    });
    queue.run();

    const core::RhythmStats &stats = server.stats();
    RunResult r;
    r.throughput = static_cast<double>(stats.responsesCompleted) /
                   des::toSeconds(queue.now());
    r.latencyMs = stats.latencyMs.mean();
    r.simdEff = stats.processIssueSlots > 0
                    ? stats.processLaneInstructions /
                          (stats.processIssueSlots * 32.0)
                    : 0.0;
    r.posted = store.totalPosted() - posted_before;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("ext_chat_workload", argc, argv);
    bench::banner("Extension: the Chat workload on Rhythm (Titan B)",
                  "Section 8 future work (Search/Email/Chat on Rhythm)");

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    chat::RoomStore store(256, 40, 7);

    TableWriter table({"page type", "mix %", "KReqs/s", "latency ms",
                       "SIMD eff", "messages posted"});
    WeightedHarmonicMean whm;
    for (uint32_t t = 0; t < chat::kNumPageTypes; ++t) {
        const chat::PageTypeInfo &info = chat::pageTable()[t];
        RunResult r = runIsolated(
            store, static_cast<chat::PageType>(t), 8, faults, overlap);
        whm.add(info.mixPercent, r.throughput);
        const std::string key = bench::slug(info.name);
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".simd_efficiency", r.simdEff);
        table.addRow({std::string(info.name),
                      bench::fmt(info.mixPercent, 0),
                      bench::fmt(r.throughput / 1e3, 0),
                      bench::fmt(r.latencyMs, 2), bench::fmt(r.simdEff, 2),
                      withCommas(r.posted)});
    }
    table.printAscii(std::cout);
    std::cout
        << "Mix-weighted workload throughput: "
        << bench::fmt(whm.value() / 1e3, 0)
        << " KReqs/s (no paper reference — this experiment extends the "
           "paper).\nObservations to check: the tiny poll page reaches "
           "the highest rate; the post\ncohorts really mutate the room "
           "store (messages posted column).\n";
    report.metric("mix_weighted_throughput", whm.value());
    if (!report.write())
        return 1;
    return 0;
}
