/**
 * @file
 * Frame-level PCIe link model: CRC detection + bounded retransmit.
 *
 * The baseline device model prices a host↔device copy as
 * `latency + bytes / bandwidth` and treats an injected corruption as
 * one whole-transfer link-layer replay (doubled time). That is how the
 * paper's §6.3 bandwidth model abstracts the link — but it gives
 * corruption an unrealistically coarse blast radius and no notion of a
 * link that stays bad.
 *
 * PcieLink refines the same §6.3 accounting to the link-layer frame
 * granularity real PCIe uses (TLPs under an LCRC): a transfer is split
 * into fixed-size frames, each carrying a CRC+sequence overhead on the
 * wire; a corrupted frame is detected by its CRC and retransmitted up
 * to a bounded number of times; a frame that exhausts its budget
 * forces a link retrain (a fixed time penalty) after which it is
 * assumed through — the transfer always completes, so corruption
 * faults never change *what* arrives, only *when*. That non-fatality
 * is what lets the recovery-equivalence harness demand byte-identical
 * responses under corruption schedules.
 *
 * Everything is deterministic: the per-frame corruption decisions come
 * from the seeded fault plan (via a callback, keeping this layer free
 * of fault-subsystem dependencies), and all arithmetic is integer/DES
 * time. With CRC disabled the link reproduces the legacy formula bit
 * for bit.
 */

#ifndef RHYTHM_SIMT_PCIE_HH
#define RHYTHM_SIMT_PCIE_HH

#include <cstdint>
#include <functional>

#include "des/time.hh"
#include "simt/kernel.hh"

namespace rhythm::simt {

/** Accounting for one planned transfer. */
struct PcieTransfer
{
    /** Total link occupancy (what the copy engine blocks for). */
    des::Time duration = 0;
    /** Payload + framing + retransmitted bytes actually on the wire. */
    uint64_t wireBytes = 0;
    /** Frames the payload was split into (0 with CRC off). */
    uint64_t frames = 0;
    /** Frame transmissions rejected by CRC. */
    uint64_t crcErrors = 0;
    /** Wire bytes spent on retransmissions. */
    uint64_t retransmittedBytes = 0;
    /** Frames that exhausted the retransmit budget (link retrains). */
    uint64_t retrains = 0;
};

/**
 * The link model. Stateless between transfers (retrains restore the
 * link); owned by value inside Device.
 */
class PcieLink
{
  public:
    explicit PcieLink(const DeviceConfig &config) : config_(&config) {}

    /**
     * Time on the wire for @p bytes of payload, excluding faults and
     * framing — exactly the legacy `latency + bytes / bandwidth`
     * formula. This is the CRC-off cost and the baseline the §6.3
     * bandwidth model and fault injector both build on.
     */
    des::Time nominal(uint64_t bytes) const
    {
        const double seconds = static_cast<double>(bytes) /
                               (config_->pcieBandwidthGBs * 1e9);
        return config_->pcieLatency + des::fromSeconds(seconds);
    }

    /**
     * Plans one CRC-protected transfer.
     * @param bytes Payload size.
     * @param frame_corrupt Consulted once per frame transmission
     *        (initial try and each retransmit); true = the frame
     *        arrives corrupted. Must be valid.
     */
    PcieTransfer transfer(uint64_t bytes,
                          const std::function<bool()> &frame_corrupt) const;

    /**
     * Plans one CRC-protected *chunk* of a larger transfer: identical
     * frame/CRC/retransmit accounting to transfer(), but the duration
     * excludes the per-transfer latency — the overlapped copy model
     * charges that once per transfer in the engine's setup phase, while
     * chunks pay pure wire occupancy (plus any retrain penalties).
     */
    PcieTransfer transferChunk(
        uint64_t bytes, const std::function<bool()> &frame_corrupt) const;

  private:
    PcieTransfer plan(uint64_t bytes,
                      const std::function<bool()> &frame_corrupt,
                      bool include_latency) const;

    const DeviceConfig *config_;
};

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_PCIE_HH
