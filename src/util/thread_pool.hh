/**
 * @file
 * Fixed-size worker pool for deterministic host-side parallelism.
 *
 * The simulator's discrete-event core is single threaded by design, but
 * the expensive host-side computations *between* DES events — warp
 * lockstep simulation of an SM's resident warps, batch request parsing,
 * independent isolated-type simulations — are pure functions of their
 * inputs. This pool executes such work concurrently under a strict
 * determinism contract:
 *
 *  - Work is expressed as an index space [0, n). Each index is executed
 *    exactly once (work conservation), by exactly one thread, and must
 *    write only to state owned by that index (its output slot).
 *  - parallelFor() / parallelRanges() are barriers: they return only
 *    after every index has executed, so the caller can merge the output
 *    slots in canonical index order afterwards. Which *thread* ran an
 *    index is unspecified; because outputs are per-index slots and the
 *    merge is canonical, results are byte-identical for any thread
 *    count, including 1.
 *  - Exceptions thrown by the body are captured per chunk; after the
 *    barrier the exception of the lowest-indexed failing chunk is
 *    rethrown (deterministic propagation). Remaining chunks still run,
 *    so the pool stays in a consistent, reusable state.
 *  - Nested use from inside a worker of the same pool executes inline
 *    on that worker (no deadlock, no oversubscription): the outer
 *    parallel level wins, which is what the platform layer relies on
 *    when it parallelizes whole simulations that internally use the
 *    same pool.
 *
 * A pool of 1 thread runs everything inline on the calling thread and
 * never spawns workers — the default `--sim-threads=1` path is the
 * serial simulator, not a one-worker pool.
 */

#ifndef RHYTHM_UTIL_THREAD_POOL_HH
#define RHYTHM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rhythm::util {

/** Fixed-size worker pool with a deterministic fork/join contract. */
class ThreadPool
{
  public:
    /** Body invoked with a half-open index range [begin, end). */
    using RangeBody = std::function<void(size_t begin, size_t end)>;
    /** Body invoked with one index. */
    using IndexBody = std::function<void(size_t index)>;

    /**
     * Creates the pool. @p threads is clamped to >= 1; with 1 thread no
     * workers are spawned and all work runs inline.
     */
    explicit ThreadPool(unsigned threads = 1);

    /** Joins all workers. Outstanding work must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute work (including the caller). */
    unsigned threads() const { return threads_; }

    /**
     * Executes body(i) for every i in [0, n); returns after all have
     * completed. See the file comment for the determinism contract.
     */
    void parallelFor(size_t n, const IndexBody &body);

    /**
     * Executes @p body over [0, n) in chunks of at most @p grain
     * indices; chunks are claimed dynamically (work conservation) and
     * the call returns only when every chunk has completed. Use a
     * grain > 1 when individual indices are too cheap to amortize a
     * claim (e.g. parsing one request).
     */
    void parallelRanges(size_t n, size_t grain, const RangeBody &body);

    /** Total parallelRanges/parallelFor invocations (for tests). */
    uint64_t regions() const { return regions_; }

  private:
    struct Job
    {
        const RangeBody *body = nullptr;
        size_t n = 0;
        size_t grain = 1;
        size_t chunks = 0;
        size_t nextChunk = 0;  //!< Guarded by mutex_.
        size_t completed = 0;  //!< Guarded by mutex_.
        std::vector<std::exception_ptr> errors; //!< Slot per chunk.
    };

    void workerLoop();
    /** Claims and runs chunks of the current job until none remain. */
    void runChunks(Job &job);

    unsigned threads_ = 1;
    uint64_t regions_ = 0;

    std::mutex mutex_;
    std::condition_variable workCv_; //!< Wakes workers on a new job.
    std::condition_variable doneCv_; //!< Wakes the owner on completion.
    Job *job_ = nullptr;             //!< Guarded by mutex_.
    size_t activeWorkers_ = 0;       //!< Workers inside the job; guarded by mutex_.
    uint64_t generation_ = 0;        //!< Bumped per job; guarded by mutex_.
    bool shutdown_ = false;          //!< Guarded by mutex_.
    std::vector<std::thread> workers_;
};

/**
 * The process-wide simulation pool, sized by setSimThreads() (default
 * 1 = serial). Created lazily on first use; the configured size is
 * applied to pools created afterwards, so configure it at startup,
 * before the first simulation runs (the --sim-threads flag does).
 */
ThreadPool &simPool();

/**
 * Sets the simulation thread count and replaces the global pool.
 * Must not be called while a parallel region is executing (call it
 * from the top of main, or between simulation runs).
 */
void setSimThreads(unsigned threads);

/** The configured simulation thread count. */
unsigned simThreads();

} // namespace rhythm::util

#endif // RHYTHM_UTIL_THREAD_POOL_HH
