file(REMOVE_RECURSE
  "../bench/fig9_pcie_bound"
  "../bench/fig9_pcie_bound.pdb"
  "CMakeFiles/fig9_pcie_bound.dir/fig9_pcie_bound.cc.o"
  "CMakeFiles/fig9_pcie_bound.dir/fig9_pcie_bound.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pcie_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
