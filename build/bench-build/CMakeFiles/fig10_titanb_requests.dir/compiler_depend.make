# Empty compiler generated dependencies file for fig10_titanb_requests.
# This may be replaced when dependencies are built.
