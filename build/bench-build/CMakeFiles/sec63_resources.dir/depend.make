# Empty dependencies file for sec63_resources.
# This may be replaced when dependencies are built.
