/**
 * @file
 * Streaming 64-bit hashers for content fingerprints.
 *
 * Two structurally independent accumulators (FNV-1a and a
 * multiply-rotate chain with a splitmix64 finalizer) are combined into
 * 128-bit
 * keys where a silent collision would corrupt results — e.g. the warp
 * profile cache, which replicates cached WarpStats verbatim and so
 * must treat key equality as content equality. Neither hash is
 * cryptographic; the pairing just pushes the collision probability for
 * realistic cache populations (< 2^20 entries) below ~2^-88.
 */

#ifndef RHYTHM_UTIL_HASH_HH
#define RHYTHM_UTIL_HASH_HH

#include <cstdint>

namespace rhythm::util {

/**
 * Streaming FNV-1a variant folding whole 64-bit words per step
 * (xor-then-multiply with the FNV prime). Word folding keeps the
 * xor-multiply structure of FNV — distinct from Mix64's add-and-
 * finalize chain — at one multiply per word instead of eight, which
 * matters because fingerprinting runs over every warp's full trace on
 * the profile-cache hot path.
 */
class Fnv1a64
{
  public:
    static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
    static constexpr uint64_t kPrime = 1099511628211ull;

    constexpr void update(uint64_t word)
    {
        state_ = (state_ ^ word) * kPrime;
    }

    constexpr uint64_t digest() const { return state_; }

  private:
    uint64_t state_ = kOffsetBasis;
};

/**
 * Streaming multiply-rotate accumulator finalized with splitmix64 at
 * digest time. Each word is diffused by an odd-constant multiply (a
 * bijection) and folded in with an add-and-rotate, so word order and
 * position matter; the three-multiply splitmix finalizer runs once per
 * digest instead of once per word. Mixes through add-rotate rather
 * than FNV's xor-multiply chain, so its collisions are independent of
 * Fnv1a64's — and its one multiply per word has no data dependence on
 * the accumulator, letting it pipeline alongside Fnv1a64 on the
 * fingerprint hot path.
 */
class Mix64
{
  public:
    constexpr void update(uint64_t word)
    {
        const uint64_t diffused = word * 0x9e3779b97f4a7c15ull;
        state_ = rotl(state_ + diffused, 29);
    }

    constexpr uint64_t digest() const
    {
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    static constexpr uint64_t rotl(uint64_t v, int r)
    {
        return (v << r) | (v >> (64 - r));
    }

    uint64_t state_ = 0x6a09e667f3bcc909ull;
};

} // namespace rhythm::util

#endif // RHYTHM_UTIL_HASH_HH
