#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace rhythm::obs {

namespace {

/// True for bytes that cannot appear verbatim in a JSON string.
inline bool
needsJsonEscape(unsigned char c)
{
    return c == '"' || c == '\\' || c < 0x20;
}

} // namespace

void
jsonEscapeTo(std::string_view s, std::string &out)
{
    // Bulk-append runs of clean bytes; most strings (metric names,
    // span labels) contain nothing to escape and take one append.
    size_t start = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (!needsJsonEscape(static_cast<unsigned char>(c)))
            continue;
        out.append(s.substr(start, i - start));
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default: {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
          }
        }
        start = i + 1;
    }
    out.append(s.substr(start));
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    jsonEscapeTo(s, out);
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

JsonWriter::JsonWriter(std::ostream &out, int indent)
    : out_(out), indent_(indent)
{
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    scratch_.assign(1, '\n');
    scratch_.append(stack_.size() * static_cast<size_t>(indent_), ' ');
    out_ << scratch_;
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    Level &top = stack_.back();
    if (top.expectValue) {
        // Value follows its key on the same line.
        top.expectValue = false;
        return;
    }
    if (!top.empty)
        out_ << ',';
    top.empty = false;
    newline();
}

void
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    stack_.push_back(Level{true, true, false});
}

void
JsonWriter::endObject()
{
    const bool empty = stack_.empty() ? true : stack_.back().empty;
    if (!stack_.empty())
        stack_.pop_back();
    if (!empty)
        newline();
    out_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    stack_.push_back(Level{false, true, false});
}

void
JsonWriter::endArray()
{
    const bool empty = stack_.empty() ? true : stack_.back().empty;
    if (!stack_.empty())
        stack_.pop_back();
    if (!empty)
        newline();
    out_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    // One stream insertion per key: escaping goes through the writer's
    // scratch string, whose capacity persists across calls (emitting a
    // trace writes millions of keys).
    scratch_.assign(1, '"');
    jsonEscapeTo(k, scratch_);
    scratch_ += "\": ";
    out_ << scratch_;
    if (!stack_.empty())
        stack_.back().expectValue = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    scratch_.assign(1, '"');
    jsonEscapeTo(v, scratch_);
    scratch_ += '"';
    out_ << scratch_;
}

void
JsonWriter::value(const char *v)
{
    value(std::string_view(v));
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        out_ << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ << buf;
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(int64_t v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(int v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    separate();
    out_ << "null";
}

void
JsonWriter::raw(std::string_view json)
{
    separate();
    out_ << json;
}

} // namespace rhythm::obs
