file(REMOVE_RECURSE
  "CMakeFiles/backpressure_test.dir/backpressure_test.cc.o"
  "CMakeFiles/backpressure_test.dir/backpressure_test.cc.o.d"
  "backpressure_test"
  "backpressure_test.pdb"
  "backpressure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backpressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
