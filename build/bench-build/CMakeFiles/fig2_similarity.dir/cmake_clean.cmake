file(REMOVE_RECURSE
  "../bench/fig2_similarity"
  "../bench/fig2_similarity.pdb"
  "CMakeFiles/fig2_similarity.dir/fig2_similarity.cc.o"
  "CMakeFiles/fig2_similarity.dir/fig2_similarity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
