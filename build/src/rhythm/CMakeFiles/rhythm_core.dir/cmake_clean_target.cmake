file(REMOVE_RECURSE
  "librhythm_core.a"
)
