file(REMOVE_RECURSE
  "../bench/table2_workload"
  "../bench/table2_workload.pdb"
  "CMakeFiles/table2_workload.dir/table2_workload.cc.o"
  "CMakeFiles/table2_workload.dir/table2_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
