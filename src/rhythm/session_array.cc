#include "rhythm/session_array.hh"

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhythm::core {
namespace {

enum SessionBlock : uint32_t {
    kBlockInsert = kSessionBlockBase + 0,
    kBlockProbe = kSessionBlockBase + 1,
    kBlockLookup = kSessionBlockBase + 2,
    kBlockErase = kSessionBlockBase + 3,
};

uint64_t
hashUser(uint64_t user_id)
{
    uint64_t x = user_id + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

SessionArray::SessionArray(uint32_t buckets, uint32_t nodes_per_bucket,
                           uint64_t device_base, uint64_t seed)
    : buckets_(buckets), nodesPerBucket_(nodes_per_bucket),
      deviceBase_(device_base), rng_(seed),
      nodes_(static_cast<size_t>(buckets) * nodes_per_bucket)
{
    RHYTHM_ASSERT(buckets > 0 && nodes_per_bucket > 0);
}

uint64_t
SessionArray::nodeAddr(uint32_t bucket, uint32_t node) const
{
    const uint64_t index =
        static_cast<uint64_t>(bucket) * nodesPerBucket_ + node;
    return deviceBase_ + index * kNodeBytes;
}

bool
SessionArray::decode(uint64_t session_id, uint32_t &bucket,
                     uint32_t &node) const
{
    if (session_id == 0 || session_id > capacity())
        return false;
    const uint64_t index = session_id - 1;
    bucket = static_cast<uint32_t>(index / nodesPerBucket_);
    node = static_cast<uint32_t>(index % nodesPerBucket_);
    return true;
}

uint64_t
SessionArray::create(uint64_t user_id, simt::TraceRecorder &rec)
{
    RHYTHM_ASSERT(user_id != 0, "user id 0 is the free marker");
    const uint32_t bucket =
        static_cast<uint32_t>(hashUser(user_id) % buckets_);
    const uint32_t start =
        static_cast<uint32_t>(rng_.nextBounded(nodesPerBucket_));

    rec.block(kBlockInsert, 60);
    for (uint32_t i = 0; i < nodesPerBucket_; ++i) {
        const uint32_t node = (start + i) % nodesPerBucket_;
        // Atomic compare-and-swap on the node's user word (the paper
        // uses lock-free insertion via atomics, Section 4.6).
        rec.block(kBlockProbe, 18);
        rec.load(nodeAddr(bucket, node), 1, 0, 8);
        Node &slot =
            nodes_[static_cast<size_t>(bucket) * nodesPerBucket_ + node];
        if (slot.userId == 0) {
            slot.userId = user_id;
            rec.store(nodeAddr(bucket, node), 1, 0, 8);
            ++live_;
            if (i > 0)
                ++collisions_;
            const uint64_t sid =
                static_cast<uint64_t>(bucket) * nodesPerBucket_ + node + 1;
            if (mutationHook_)
                mutationHook_(true, sid, user_id);
            return sid;
        }
    }
    return 0; // bucket full
}

uint64_t
SessionArray::lookup(uint64_t session_id, simt::TraceRecorder &rec)
{
    rec.block(kBlockLookup, 42);
    uint32_t bucket = 0, node = 0;
    if (!decode(session_id, bucket, node))
        return 0;
    rec.load(nodeAddr(bucket, node), 1, 0, 8);
    return nodes_[static_cast<size_t>(bucket) * nodesPerBucket_ + node]
        .userId;
}

bool
SessionArray::destroy(uint64_t session_id, simt::TraceRecorder &rec)
{
    rec.block(kBlockErase, 36);
    uint32_t bucket = 0, node = 0;
    if (!decode(session_id, bucket, node))
        return false;
    Node &slot =
        nodes_[static_cast<size_t>(bucket) * nodesPerBucket_ + node];
    if (slot.userId == 0)
        return false;
    slot.userId = 0;
    rec.store(nodeAddr(bucket, node), 1, 0, 8);
    --live_;
    if (mutationHook_)
        mutationHook_(false, session_id, 0);
    return true;
}

SessionArray::Snapshot
SessionArray::snapshot() const
{
    Snapshot snap;
    snap.userIds.reserve(nodes_.size());
    for (const Node &n : nodes_)
        snap.userIds.push_back(n.userId);
    snap.live = live_;
    snap.collisions = collisions_;
    snap.rngState = rng_.state();
    return snap;
}

void
SessionArray::restore(const Snapshot &snap)
{
    RHYTHM_ASSERT(snap.userIds.size() == nodes_.size(),
                  "session snapshot geometry mismatch");
    for (size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i].userId = snap.userIds[i];
    live_ = snap.live;
    collisions_ = snap.collisions;
    rng_.setState(snap.rngState);
}

uint64_t
SessionArray::digest() const
{
    util::Fnv1a64 f;
    util::Mix64 m;
    for (const Node &n : nodes_) {
        f.update(n.userId);
        m.update(n.userId);
    }
    f.update(live_);
    m.update(live_);
    f.update(collisions_);
    m.update(collisions_);
    for (uint64_t w : rng_.state()) {
        f.update(w);
        m.update(w);
    }
    m.update(f.digest());
    return m.digest();
}

std::vector<std::pair<uint64_t, uint64_t>>
SessionArray::populate(uint64_t count, uint64_t max_user_id,
                       const std::function<bool(uint64_t)> &user_filter)
{
    simt::NullTracer null;
    std::vector<std::pair<uint64_t, uint64_t>> out;
    out.reserve(count);
    // Each user hashes to one bucket, so with few distinct users the
    // reachable buckets can saturate long before the whole array does;
    // give up after a burst of consecutive full-bucket rejections
    // (or filter rejections — a filter matching a small user subset
    // behaves the same way) rather than rejection-sampling forever.
    int consecutive_failures = 0;
    while (out.size() < count && consecutive_failures < 4096) {
        const uint64_t user = 1 + rng_.nextBounded(max_user_id);
        if (user_filter && !user_filter(user)) {
            ++consecutive_failures;
            continue;
        }
        const uint64_t sid = create(user, null);
        if (sid != 0) {
            out.emplace_back(sid, user);
            consecutive_failures = 0;
        } else {
            if (live_ >= capacity())
                break; // array genuinely full
            ++consecutive_failures;
        }
    }
    return out;
}

} // namespace rhythm::core
