/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns simulated time. Components schedule callbacks
 * at absolute or relative times; run() dispatches them in (time, sequence)
 * order, so events scheduled for the same instant fire in FIFO order,
 * which keeps every experiment deterministic.
 *
 * Multi-device fleets give each device its own *event stream*. A stream
 * is an independently sequenced sub-queue; the queue merges stream fronts
 * in canonical order — lowest timestamp first, ties broken by lowest
 * stream id, then by per-stream FIFO sequence. Stream ids are unique, so
 * the merge order is a total order and stays byte-identical no matter how
 * the per-stream sub-queues were filled. Events scheduled from inside a
 * callback inherit the dispatching event's stream, so a shard's whole
 * causal chain stays on the shard's stream without the scheduling sites
 * needing to know about streams at all. Single-device runs use only the
 * default stream 0 and are bit-for-bit identical to the pre-stream
 * kernel, including the orderHash audit fold.
 */

#ifndef RHYTHM_DES_EVENT_QUEUE_HH
#define RHYTHM_DES_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "des/time.hh"

namespace rhythm::des {

/** Identifies one per-device event stream. Stream 0 always exists. */
using StreamId = uint32_t;

/** Opaque handle identifying a scheduled event (for cancellation). */
struct EventId
{
    Time when = 0;
    uint64_t sequence = 0;
    StreamId stream = 0;

    bool operator==(const EventId &) const = default;
};

/**
 * The simulation event queue and clock.
 *
 * Not thread safe by design: the Rhythm server is single threaded (one of
 * the paper's explicit design points) and the whole simulation runs on one
 * host thread.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedules a callback at an absolute simulated time on the current
     * stream (the stream of the event being dispatched, or stream 0 at
     * top level).
     * @param when Absolute time; must be >= now().
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Time when, Callback cb);

    /** Schedules a callback @p delay after the current time. */
    EventId scheduleAfter(Time delay, Callback cb);

    /** Schedules on an explicit stream (cross-shard messaging). */
    EventId scheduleAtOn(StreamId stream, Time when, Callback cb);

    /** Relative-time variant of scheduleAtOn(). */
    EventId scheduleAfterOn(StreamId stream, Time delay, Callback cb);

    /**
     * Creates a new event stream and returns its id. Streams are never
     * destroyed; a fleet creates one per device at startup.
     */
    StreamId createStream();

    /** Number of streams (>= 1; stream 0 always exists). */
    uint32_t numStreams() const { return static_cast<uint32_t>(streams_.size()); }

    /**
     * Stream of the event currently being dispatched (stream 0 between
     * events). scheduleAt()/scheduleAfter() inherit this, so everything a
     * shard's callbacks schedule lands back on the shard's stream.
     */
    StreamId currentStream() const { return currentStream_; }

    /**
     * Cancels a pending event.
     * @return true if the event was pending and has been removed.
     */
    bool cancel(const EventId &id);

    /** Number of pending events across all streams. */
    size_t pending() const { return pendingCount_; }

    /**
     * Events dispatched over the queue's lifetime. Useful as a cheap
     * progress watchdog: a simulation that stops making progress stops
     * advancing this counter even when pending() stays non-zero.
     */
    uint64_t dispatched() const { return dispatched_; }

    /**
     * High-water mark of pending() over the queue's lifetime — a
     * classic DES health metric (a queue whose depth keeps growing is
     * a simulation leaking events). Exported by the observability
     * layer.
     */
    size_t maxPending() const { return maxPending_; }

    /**
     * Order-audit fingerprint: an FNV-1a hash folded over the
     * (when, sequence) key of every event dispatched so far — plus the
     * stream id for events on streams other than the default, so a
     * fleet's canonical merge order is audited too. Host-side
     * parallelism happens strictly *inside* one event callback (the
     * engine joins its workers before returning), so this hash must be
     * invariant under --sim-threads; the equivalence tests compare it
     * across thread counts to prove the DES schedule — every epoch
     * barrier between events — is untouched by parallel execution.
     * Stream-0-only runs fold exactly the same bytes as the
     * pre-stream kernel.
     */
    uint64_t orderHash() const { return orderHash_; }

    /**
     * Runs until the queue drains or the optional horizon is reached.
     * @param horizon Stop once the next event is strictly beyond this
     *        time (the clock is advanced to the horizon). 0 = no horizon.
     * @return Number of events dispatched.
     */
    uint64_t run(Time horizon = 0);

    /** Dispatches exactly one event if any is pending. @return true if so. */
    bool step();

    /** Requests that run() return after the current event completes. */
    void stop() { stopRequested_ = true; }

    /**
     * RAII guard that redirects scheduleAt()/scheduleAfter() onto a given
     * stream for its lifetime. Used at top level to build a shard (so the
     * shard's initial events land on its stream); during dispatch the
     * inherited stream already does the right thing.
     */
    class StreamScope
    {
      public:
        StreamScope(EventQueue &queue, StreamId stream)
            : queue_(queue), saved_(queue.currentStream_)
        {
            queue_.currentStream_ = stream;
        }
        ~StreamScope() { queue_.currentStream_ = saved_; }
        StreamScope(const StreamScope &) = delete;
        StreamScope &operator=(const StreamScope &) = delete;

      private:
        EventQueue &queue_;
        StreamId saved_;
    };

  private:
    using Key = std::pair<Time, uint64_t>;

    /** One per-device sub-queue with its own FIFO sequence counter. */
    struct Stream
    {
        std::map<Key, Callback> events;
        uint64_t nextSequence = 0;
    };

    /** Index of the stream holding the canonically-next event, or
     *  streams_.size() when every stream is empty. */
    size_t frontStream() const;

    Time now_ = 0;
    StreamId currentStream_ = 0;
    uint64_t dispatched_ = 0;
    uint64_t orderHash_ = 14695981039346656037ull; //!< FNV-1a offset basis.
    size_t pendingCount_ = 0;
    size_t maxPending_ = 0;
    bool stopRequested_ = false;
    std::vector<Stream> streams_{1};
};

} // namespace rhythm::des

#endif // RHYTHM_DES_EVENT_QUEUE_HH
