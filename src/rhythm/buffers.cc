#include "rhythm/buffers.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm::core {
namespace {

/** Block ids for the buffer machinery. */
enum BufferBlock : uint32_t {
    kBlockStorePass = 5100,  //!< Replayed store of one append.
    kBlockPadReduce = 5101,  //!< Warp butterfly max-reduction.
    kBlockPatch = 5102,      //!< Content-Length back-patch store.
};

/** Instruction weight of a warp butterfly max reduction (log2(32) steps
 *  of shuffle+max through shared memory, Section 4.6). */
constexpr uint32_t kReduceInsts = 30;

} // namespace

/**
 * Per-lane ResponseWriter view over the cohort buffer. Generation work
 * (instructions, source reads) is charged at append time; stores are
 * replayed with layout and padding by CohortBuffer::finalizeStores().
 */
class LaneWriter : public specweb::ResponseWriter
{
  public:
    LaneWriter(CohortBuffer &parent, uint32_t lane)
        : parent_(parent), lane_(lane)
    {
    }

    /** Rebinds the recorder charged for generation work. */
    void bind(simt::TraceRecorder &rec) { rec_ = &rec; }

    void
    appendStatic(uint32_t block_id, std::string_view text) override
    {
        append(block_id, text, false);
    }

    void
    appendDynamic(uint32_t block_id, std::string_view text) override
    {
        append(block_id, text, true);
    }

    size_t
    reserve(uint32_t block_id, size_t width) override
    {
        auto &lane = parent_.lanes_[lane_];
        const size_t offset = lane.content.size();
        append(block_id, std::string(width, ' '), false);
        return offset;
    }

    void
    patch(size_t offset, std::string_view text) override
    {
        auto &lane = parent_.lanes_[lane_];
        RHYTHM_ASSERT(offset + text.size() <= lane.content.size(),
                      "patch outside reservation");
        rec_->block(kBlockPatch, 24);
        lane.content.replace(offset, text.size(), text);
    }

    size_t
    size() const override
    {
        return parent_.lanes_[lane_].content.size();
    }

  private:
    void
    append(uint32_t block_id, std::string_view text, bool dynamic)
    {
        RHYTHM_ASSERT(rec_, "writer used before bind()");
        auto &lane = parent_.lanes_[lane_];
        lane.used = true;
        rec_->block(block_id,
                    16 + static_cast<uint32_t>(text.size()) *
                             parent_.config_.instsPerByte);
        const uint32_t words =
            static_cast<uint32_t>((text.size() + 3) / 4);
        if (words > 0) {
            if (dynamic) {
                // Dynamic source (backend response region): laid out with
                // the same cohort geometry as the response buffers.
                const uint64_t src =
                    parent_.elementAddr(lane_, lane.content.size()) +
                    0x4000'0000;
                const uint32_t stride =
                    parent_.config_.layout == BufferLayout::Transposed
                        ? parent_.config_.cohortSize * 4
                        : 4;
                rec_->load(src, words, stride, 4);
            } else {
                // Static template content lives in constant memory.
                rec_->load(0x1000 + block_id * 4096, words, 4, 4,
                           simt::MemSpace::Constant);
            }
        }
        lane.content.append(text);
        lane.appends.push_back(
            CohortBuffer::Append{block_id,
                                 static_cast<uint32_t>(text.size())});
    }

    CohortBuffer &parent_;
    uint32_t lane_;
    simt::TraceRecorder *rec_ = nullptr;
};

CohortBuffer::CohortBuffer(const CohortBufferConfig &config)
    : config_(config), lanes_(config.cohortSize)
{
    RHYTHM_ASSERT(config.cohortSize > 0 && config.laneBytes > 0);
    RHYTHM_ASSERT(config.warpWidth > 0);
    writers_.reserve(config.cohortSize);
    for (uint32_t l = 0; l < config.cohortSize; ++l)
        writers_.push_back(std::make_unique<LaneWriter>(*this, l));
}

specweb::ResponseWriter &
CohortBuffer::writer(uint32_t lane, simt::TraceRecorder &rec)
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    auto *w = static_cast<LaneWriter *>(writers_[lane].get());
    w->bind(rec);
    return *w;
}

const std::string &
CohortBuffer::content(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].content;
}

size_t
CohortBuffer::contentSize(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].content.size();
}

uint64_t
CohortBuffer::elementAddr(uint32_t lane, size_t offset) const
{
    if (config_.layout == BufferLayout::Transposed) {
        // 4-byte elements interleaved across the cohort: element e of
        // lane l lives at base + e*cohortSize*4 + l*4.
        const uint64_t element = offset / 4;
        return config_.deviceBase +
               element * config_.cohortSize * 4 +
               static_cast<uint64_t>(lane) * 4 + offset % 4;
    }
    return config_.deviceBase +
           static_cast<uint64_t>(lane) * config_.laneBytes + offset;
}

void
CohortBuffer::finalizeStores(std::vector<simt::ThreadTrace> &traces)
{
    RHYTHM_ASSERT(traces.size() >= lanes_.size(),
                  "trace vector smaller than cohort");
    const uint32_t width = static_cast<uint32_t>(config_.warpWidth);

    auto emit = [&](uint32_t lane, uint32_t block_id, uint32_t insts,
                    size_t offset, uint32_t bytes) {
        simt::ThreadTrace &t = traces[lane];
        t.blocks.push_back(simt::BlockExec{
            block_id, insts, static_cast<uint32_t>(t.memOps.size()), 0});
        if (bytes > 0) {
            simt::MemOp op;
            op.addr = elementAddr(lane, offset);
            op.count = (bytes + 3) / 4;
            op.stride = config_.layout == BufferLayout::Transposed
                            ? config_.cohortSize * 4
                            : 4;
            op.width = 4;
            op.space = simt::MemSpace::Global;
            op.isStore = true;
            t.memOps.push_back(op);
            ++t.blocks.back().memCount;
        }
    };

    for (uint32_t base = 0; base < lanes_.size(); base += width) {
        const uint32_t warp_lanes = std::min(
            width, static_cast<uint32_t>(lanes_.size()) - base);
        size_t max_appends = 0;
        for (uint32_t l = 0; l < warp_lanes; ++l) {
            if (lanes_[base + l].used)
                max_appends = std::max(max_appends,
                                       lanes_[base + l].appends.size());
        }
        std::vector<size_t> offsets(warp_lanes, 0);
        for (size_t j = 0; j < max_appends; ++j) {
            // Warp-max padded length (butterfly reduction on device).
            uint32_t max_len = 0;
            for (uint32_t l = 0; l < warp_lanes; ++l) {
                const Lane &lane = lanes_[base + l];
                if (lane.used && j < lane.appends.size())
                    max_len = std::max(max_len, lane.appends[j].length);
            }
            for (uint32_t l = 0; l < warp_lanes; ++l) {
                Lane &lane = lanes_[base + l];
                if (!lane.used || j >= lane.appends.size())
                    continue;
                const uint32_t own = lane.appends[j].length;
                const uint32_t stored =
                    config_.padToWarpMax ? max_len : own;
                const uint32_t insts =
                    20 + stored * 2 +
                    (config_.padToWarpMax ? kReduceInsts : 0);
                emit(base + l, kBlockStorePass, insts,
                     offsets[l], stored);
                if (config_.padToWarpMax)
                    paddingBytes_ += stored - own;
                offsets[l] += stored;
            }
        }
        for (uint32_t l = 0; l < warp_lanes; ++l) {
            Lane &lane = lanes_[base + l];
            if (!lane.used)
                continue;
            lane.paddedSize = offsets[l];
            if (offsets[l] > config_.laneBytes)
                overflowed_ = true;
        }
    }
}

size_t
CohortBuffer::paddedSize(uint32_t lane) const
{
    RHYTHM_ASSERT(lane < config_.cohortSize);
    return lanes_[lane].paddedSize;
}

double
CohortBuffer::bufferUtilization() const
{
    uint64_t content = 0;
    uint64_t allocated = 0;
    for (const Lane &lane : lanes_) {
        if (!lane.used)
            continue;
        content += lane.content.size();
        allocated += config_.laneBytes;
    }
    return allocated == 0
               ? 0.0
               : static_cast<double>(content) /
                     static_cast<double>(allocated);
}

void
transposeRegionLoads(simt::ThreadTrace &trace, uint64_t region_base,
                     uint32_t lane, uint32_t slot_bytes, uint32_t cohort)
{
    const uint64_t lane_base =
        region_base + static_cast<uint64_t>(lane) * slot_bytes;
    for (simt::MemOp &op : trace.memOps) {
        if (op.isStore || op.addr < lane_base ||
            op.addr >= lane_base + slot_bytes)
            continue;
        const uint64_t off = op.addr - lane_base;
        op.addr = region_base + (off / 4) * (cohort * 4ull) +
                  static_cast<uint64_t>(lane) * 4 + off % 4;
        op.stride = cohort * 4;
    }
}

void
untransposeRegionLoads(simt::ThreadTrace &trace, uint64_t region_base,
                       uint32_t lane, uint32_t slot_bytes, uint32_t cohort)
{
    const uint64_t lane_base =
        region_base + static_cast<uint64_t>(lane) * slot_bytes;
    const uint64_t region_bytes =
        static_cast<uint64_t>(slot_bytes) * cohort;
    for (simt::MemOp &op : trace.memOps) {
        if (op.isStore || op.addr < region_base ||
            op.addr >= region_base + region_bytes)
            continue;
        const uint64_t toff = op.addr - region_base;
        const uint64_t element = toff / (cohort * 4ull);
        const uint64_t within = toff % (cohort * 4ull);
        if (within / 4 != lane)
            continue; // another lane's interleaved element
        op.addr = lane_base + element * 4 + within % 4;
        op.stride = 4;
    }
}

void
CohortBuffer::reset()
{
    for (Lane &lane : lanes_) {
        lane.content.clear();
        lane.appends.clear();
        lane.paddedSize = 0;
        lane.used = false;
    }
    paddingBytes_ = 0;
    overflowed_ = false;
}

} // namespace rhythm::core
