# Empty compiler generated dependencies file for fig9_pcie_bound.
# This may be replaced when dependencies are built.
