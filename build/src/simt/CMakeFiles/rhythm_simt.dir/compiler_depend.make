# Empty compiler generated dependencies file for rhythm_simt.
# This may be replaced when dependencies are built.
