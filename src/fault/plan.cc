#include "fault/plan.hh"

#include "util/logging.hh"

namespace rhythm::fault {
namespace {

/// splitmix64 step used to derive independent per-site seeds.
uint64_t
mix(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

std::string_view
siteName(Site site)
{
    switch (site) {
      case Site::BackendFail:      return "backend-fail";
      case Site::BackendSlow:      return "backend-slow";
      case Site::PcieCorrupt:      return "pcie-corrupt";
      case Site::PcieDegrade:      return "pcie-degrade";
      case Site::StreamStall:      return "stream-stall";
      case Site::ClientDisconnect: return "client-disconnect";
      case Site::BackendCrash:     return "backend-crash";
      case Site::JournalTorn:      return "journal-torn";
      case Site::KernelHang:       return "kernel-hang";
    }
    return "unknown";
}

bool
FaultConfig::allQuiet() const
{
    for (const SiteSchedule &s : sites) {
        if (s.probability > 0.0)
            return false;
    }
    return true;
}

FaultPlan::FaultPlan(const FaultConfig &config) : config_(config)
{
    for (size_t i = 0; i < kNumSites; ++i) {
        RHYTHM_ASSERT(config_.sites[i].probability >= 0.0 &&
                          config_.sites[i].probability <= 1.0,
                      "fault probability outside [0, 1]");
        RHYTHM_ASSERT(config_.sites[i].factor >= 1.0,
                      "degradation factor below 1");
        state_[i].rng = Rng(mix(config_.seed + 0x5157ull * (i + 1)));
    }
}

Decision
FaultPlan::at(Site site, des::Time now)
{
    SiteState &st = state_[static_cast<size_t>(site)];
    const SiteSchedule &sched = config_.at(site);
    const uint64_t ordinal = st.consultations++;

    // Always draw the same two variates so the stream stays aligned
    // whether or not this consultation fires.
    const double roll = st.rng.nextDouble();
    const double mean =
        sched.meanDelay > 0 ? des::toSeconds(sched.meanDelay) : 1.0;
    const double delay_s = st.rng.nextExponential(mean);

    Decision d;
    const bool targeted = st.scheduled.erase(ordinal) > 0;
    const bool windowed = now >= sched.activeFrom && now < sched.activeUntil;
    if (!targeted && !(windowed && roll < sched.probability))
        return d;

    d.fire = true;
    if (sched.meanDelay > 0)
        d.delay = des::fromSeconds(delay_s);
    d.factor = sched.factor;
    ++st.injected;
    return d;
}

void
FaultPlan::scheduleFault(Site site, uint64_t ordinal)
{
    state_[static_cast<size_t>(site)].scheduled.insert(ordinal);
}

uint64_t
FaultPlan::consultations(Site site) const
{
    return state_[static_cast<size_t>(site)].consultations;
}

uint64_t
FaultPlan::injected(Site site) const
{
    return state_[static_cast<size_t>(site)].injected;
}

uint64_t
FaultPlan::totalInjected() const
{
    uint64_t total = 0;
    for (const SiteState &st : state_)
        total += st.injected;
    return total;
}

} // namespace rhythm::fault
