/**
 * @file
 * Unit tests for src/util: rng, stats, strings, table, flags, arena.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>

#include "util/arena.hh"
#include "util/flags.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace rhythm {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo_seen |= v == -2;
        hi_seen |= v == 2;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ExponentialMeanApproximates)
{
    Rng rng(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BoolProbabilityEdges)
{
    Rng rng(17);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(Summary, MergeMatchesCombined)
{
    Summary a, b, all;
    Rng rng(23);
    for (int i = 0; i < 500; ++i) {
        double v = rng.nextDouble() * 10;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, PercentilesOnKnownData)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_NEAR(h.median(), 50.5, 1e-9);
    EXPECT_NEAR(h.percentile(99), 99.01, 1e-9);
}

TEST(Histogram, MeanAndClear)
{
    Histogram h;
    h.add(1);
    h.add(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(WeightedHarmonicMean, UniformWeightsMatchHarmonicMean)
{
    WeightedHarmonicMean whm;
    whm.add(1.0, 2.0);
    whm.add(1.0, 4.0);
    // Harmonic mean of {2, 4} = 2 / (1/2 + 1/4) = 8/3.
    EXPECT_NEAR(whm.value(), 8.0 / 3.0, 1e-12);
}

TEST(WeightedHarmonicMean, WeightsBias)
{
    WeightedHarmonicMean whm;
    whm.add(3.0, 2.0);
    whm.add(1.0, 4.0);
    EXPECT_NEAR(whm.value(), 4.0 / (3.0 / 2.0 + 1.0 / 4.0), 1e-12);
}

TEST(Strings, SplitKeepsEmptyParts)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\r\n"), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWithAndIEquals)
{
    EXPECT_TRUE(startsWith("GET /login", "GET"));
    EXPECT_FALSE(startsWith("GE", "GET"));
    EXPECT_TRUE(iequals("Content-Length", "content-length"));
    EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Strings, ParseU64)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseU64("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("12a", v));
    EXPECT_FALSE(parseU64("99999999999999999999999", v));
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(Strings, HumanFormats)
{
    EXPECT_EQ(humanBytes(512), "512.0 B");
    EXPECT_EQ(humanBytes(26.4 * 1024), "26.4 KiB");
    EXPECT_EQ(humanCount(1530000), "1.53 M");
}

TEST(Table, AsciiAlignsColumns)
{
    TableWriter t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.printAscii(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials)
{
    TableWriter t({"a", "b"});
    t.addRow({"x,y", "q\"z"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");
}

TEST(Flags, ParsesAllForms)
{
    const char *argv[] = {"prog",        "--a=1",     "--b", "two",
                          "--switch",    "--no-neg",  "pos1",
                          "--d=3.5",     "pos2"};
    Flags flags;
    ASSERT_TRUE(flags.parse(9, argv));
    EXPECT_EQ(flags.getU64("a", 0), 1u);
    EXPECT_EQ(flags.getString("b"), "two");
    EXPECT_TRUE(flags.getBool("switch", false));
    EXPECT_FALSE(flags.getBool("neg", true));
    EXPECT_DOUBLE_EQ(flags.getDouble("d", 0.0), 3.5);
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "pos1");
    EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(Flags, FallbacksAndMalformedValues)
{
    const char *argv[] = {"prog", "--n=abc", "--f=xyz", "--b=maybe"};
    Flags flags;
    ASSERT_TRUE(flags.parse(4, argv));
    EXPECT_EQ(flags.getU64("n", 7), 7u);
    EXPECT_DOUBLE_EQ(flags.getDouble("f", 2.5), 2.5);
    EXPECT_TRUE(flags.getBool("b", true));
    EXPECT_EQ(flags.getU64("missing", 9), 9u);
    EXPECT_FALSE(flags.has("missing"));
    EXPECT_TRUE(flags.has("n"));
}

TEST(Flags, AllowOnlyDetectsUnknown)
{
    const char *argv[] = {"prog", "--good=1", "--bad=2"};
    Flags flags;
    ASSERT_TRUE(flags.parse(3, argv));
    EXPECT_FALSE(flags.allowOnly({"good"}));
    EXPECT_NE(flags.error().find("bad"), std::string::npos);
    EXPECT_TRUE(flags.allowOnly({"good", "bad"}));
}

TEST(Flags, BareDoubleDashIsError)
{
    const char *argv[] = {"prog", "--"};
    Flags flags;
    EXPECT_FALSE(flags.parse(2, argv));
    EXPECT_FALSE(flags.error().empty());
}

TEST(Arena, BumpAllocatesDisjointAlignedRanges)
{
    util::Arena arena(1024);
    char *a = arena.alloc(100);
    char *b = arena.alloc(100);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Alignment is relative to the block base: the second allocation
    // starts at the next 64-byte boundary past the first's end.
    EXPECT_EQ(b - a, 128);
    EXPECT_EQ(arena.usedBytes(), 228u); // 128 (padded) + 100
    char *c = arena.alloc(10, 8);
    EXPECT_EQ(c - a, 232); // 228 rounded up to the 8-byte boundary
}

TEST(Arena, ResetRecyclesBlocksInPlace)
{
    util::Arena arena(256);
    char *first = arena.alloc(200);
    const size_t cap = arena.capacityBytes();
    EXPECT_EQ(arena.epoch(), 0u);

    arena.reset();
    EXPECT_EQ(arena.epoch(), 1u);
    EXPECT_EQ(arena.usedBytes(), 0u);
    // Steady state: same block handed out again, no new backing memory.
    char *again = arena.alloc(200);
    EXPECT_EQ(again, first);
    EXPECT_EQ(arena.capacityBytes(), cap);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock)
{
    util::Arena arena(64);
    char *big = arena.alloc(1000);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.capacityBytes(), 1000u);
    // Writable end to end (asan would flag an undersized block).
    big[0] = 'a';
    big[999] = 'z';
    EXPECT_EQ(big[0], 'a');
    EXPECT_EQ(big[999], 'z');

    arena.reset();
    EXPECT_EQ(arena.alloc(1000), big); // recycled, not re-grown
}

TEST(Arena, UndersizedEmptyBlockIsGrownInPlace)
{
    util::Arena arena(64);
    arena.alloc(16);
    arena.reset(); // block 0: 64 bytes, empty again
    // A request the empty block cannot hold replaces it with a larger
    // block instead of leaking a chain of too-small blocks.
    char *big = arena.alloc(512);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(arena.capacityBytes(), 512u);
    big[0] = 'a';
    big[511] = 'z';
    EXPECT_EQ(big[511], 'z');

    arena.reset();
    EXPECT_EQ(arena.alloc(512), big); // the grown block is kept
}

} // namespace
} // namespace rhythm
