/**
 * @file
 * Tests for the observability layer: fixed-bucket histogram percentile
 * estimation, the metrics registry, span nesting in the tracer, the
 * Chrome trace_event JSON export, and the guarantee that everything is
 * inert — no metrics, no events — until explicitly enabled (what keeps
 * default figure outputs byte-identical to the seed).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/common.hh"
#include "des/event_queue.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

namespace rhythm::obs {
namespace {

// ---- FixedHistogram --------------------------------------------------

TEST(FixedHistogramTest, EmptyReturnsZero)
{
    FixedHistogram h({1.0, 2.0, 4.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
}

TEST(FixedHistogramTest, PercentilesWithFineBuckets)
{
    // Unit-width buckets over [0, 100]: interpolation error < 1.
    std::vector<double> bounds;
    for (int i = 1; i <= 100; ++i)
        bounds.push_back(i);
    FixedHistogram h(bounds);
    for (int v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(FixedHistogramTest, PercentileClampedToObservedRange)
{
    FixedHistogram h({10.0, 100.0, 1000.0});
    h.add(42.0);
    h.add(43.0);
    // Every percentile of two nearby samples stays inside [min, max]
    // even though the owning bucket spans [10, 100].
    EXPECT_GE(h.percentile(1.0), 42.0);
    EXPECT_LE(h.percentile(99.0), 43.0);
}

TEST(FixedHistogramTest, OverflowBucketCatchesLargeSamples)
{
    FixedHistogram h({1.0, 2.0});
    h.add(1000.0);
    ASSERT_EQ(h.bucketCounts().size(), 3u);
    EXPECT_EQ(h.bucketCounts()[2], 1u);
    // The overflow bucket has no upper bound; the estimate clamps to
    // the observed max.
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 1000.0);
}

TEST(FixedHistogramTest, ExponentialBoundsAndReset)
{
    const auto bounds = FixedHistogram::exponentialBounds(1.0, 2.0, 4);
    ASSERT_EQ(bounds.size(), 4u);
    EXPECT_DOUBLE_EQ(bounds[0], 1.0);
    EXPECT_DOUBLE_EQ(bounds[3], 8.0);

    FixedHistogram h(bounds);
    h.add(3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
}

// ---- MetricsRegistry -------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndResettable)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("reqs");
    c.add(3);
    EXPECT_EQ(reg.counter("reqs").value(), 3u);
    EXPECT_EQ(&reg.counter("reqs"), &c);

    reg.gauge("depth").set(7.5);
    reg.histogram("lat").add(1.0);
    EXPECT_TRUE(reg.has("reqs"));
    EXPECT_TRUE(reg.has("depth"));
    EXPECT_FALSE(reg.has("nope"));

    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(reg.gauge("depth").value(), 0.0);
    EXPECT_EQ(reg.histogram("lat").count(), 0u);
    EXPECT_TRUE(reg.has("reqs")); // registrations survive reset
}

TEST(MetricsRegistryTest, FlattenUsesDottedHistogramKeys)
{
    MetricsRegistry reg;
    reg.counter("a").add(2);
    reg.gauge("b").set(4.0);
    reg.histogram("lat").add(10.0);

    std::map<std::string, double> flat;
    for (auto &[k, v] : reg.flatten())
        flat[k] = v;
    EXPECT_EQ(flat.at("a"), 2.0);
    EXPECT_EQ(flat.at("b"), 4.0);
    EXPECT_EQ(flat.at("lat.count"), 1.0);
    EXPECT_EQ(flat.at("lat.p99"), 10.0);
    EXPECT_EQ(flat.at("lat.max"), 10.0);
}

// ---- Tracer ----------------------------------------------------------

TEST(TracerTest, NestedSpansPairLifo)
{
    Tracer t;
    t.begin(1, "outer", "test", 100);
    t.begin(1, "inner", "test", 200);
    EXPECT_EQ(t.openSpans(1), 2u);
    t.end(1, 300); // closes "inner"
    t.end(1, 400); // closes "outer"
    EXPECT_EQ(t.openSpans(1), 0u);

    ASSERT_EQ(t.events().size(), 4u);
    EXPECT_EQ(t.events()[0].phase, TraceEvent::Phase::Begin);
    EXPECT_EQ(t.events()[0].name, "outer");
    EXPECT_EQ(t.events()[2].phase, TraceEvent::Phase::End);
    EXPECT_EQ(t.events()[3].phase, TraceEvent::Phase::End);
}

TEST(TracerTest, UnbalancedEndIsDropped)
{
    Tracer t;
    t.end(1, 100); // no open span: must not record an orphan "E"
    EXPECT_TRUE(t.events().empty());
}

TEST(TracerTest, CompleteAndInstantRecordArgs)
{
    Tracer t;
    t.complete(2, "kernel", "gpu", 100, 500,
               {{"warps", uint64_t{32}}, {"eff", 0.75}});
    t.instant(2, "fault", "err", 300, {{"site", std::string("pcie")}});
    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_EQ(t.events()[0].dur, des::Time{400});
    ASSERT_EQ(t.events()[0].args.size(), 2u);
    EXPECT_TRUE(t.events()[1].args[0].isString);
}

/**
 * Minimal structural well-formedness scan: balanced braces/brackets
 * outside strings and no raw control characters inside strings — the
 * failure modes of hand-rolled JSON emitters.
 */
void
expectWellFormedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            else
                EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
                    << "raw control character inside a JSON string";
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(s.find(",]"), std::string::npos) << "trailing comma";
    EXPECT_EQ(s.find(",}"), std::string::npos) << "trailing comma";
}

TEST(TracerTest, ChromeTraceExportIsWellFormed)
{
    Tracer t;
    t.setTrackName(1, "reader");
    // Names that need escaping must survive the export.
    t.begin(1, "has \"quotes\" and \\slashes\\", "test", 1'000'000);
    t.end(1, 2'000'000);
    t.complete(1, "line\nbreak", "test", 500'000, 800'000,
               {{"note", std::string("tab\there")}});
    t.instant(1, "mark", "test", 1'500'000);

    std::ostringstream out;
    t.writeChromeTrace(out);
    const std::string s = out.str();
    expectWellFormedJson(s);

    // The export wraps events in {"traceEvents": [...]} and emits a
    // thread_name metadata record for the named track.
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(s.find("\"reader\""), std::string::npos);
    EXPECT_NE(s.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(s.find("line\\nbreak"), std::string::npos);
    EXPECT_NE(s.find("tab\\there"), std::string::npos);
}

TEST(TracerTest, ExportSortsByTimestamp)
{
    Tracer t;
    t.complete(1, "late", "test", 3'000'000, 4'000'000);
    t.complete(1, "early", "test", 1'000'000, 2'000'000);
    std::ostringstream out;
    t.writeChromeTrace(out);
    const std::string s = out.str();
    EXPECT_LT(s.find("\"early\""), s.find("\"late\""));
}

// ---- Disabled-by-default guard ---------------------------------------

TEST(ObservabilityTest, MacrosAreInertWhenDisabled)
{
    Observability &o = global();
    ASSERT_FALSE(o.enabled()) << "observability must default to off";
    o.reset();

    // With obs off, the macros must record nothing: this is what keeps
    // the default driver/bench outputs byte-identical to the seed.
    OBS_COUNTER_ADD("guard.counter", 1);
    OBS_GAUGE_SET("guard.gauge", 1.0);
    OBS_HIST_ADD("guard.hist", 1.0);
    OBS_SPAN_BEGIN(1, "guard", "test");
    OBS_SPAN_END(1);
    OBS_INSTANT(1, "guard", "test");
    OBS_SPAN_COMPLETE(1, "guard", "test", 0, 1);

    EXPECT_FALSE(o.metrics().has("guard.counter"));
    EXPECT_FALSE(o.metrics().has("guard.gauge"));
    EXPECT_FALSE(o.metrics().has("guard.hist"));
    EXPECT_TRUE(o.tracer().events().empty());
}

TEST(ObservabilityTest, EnableBindsClockAndRecords)
{
    des::EventQueue queue;
    Observability &o = global();
    o.reset();
    o.enable(queue);

    OBS_COUNTER_ADD("on.counter", 2);
    OBS_SPAN_COMPLETE(1, "span", "test", 0, 100,
                      {"k", uint64_t{1}});
    EXPECT_EQ(o.metrics().counter("on.counter").value(), 2u);
    ASSERT_EQ(o.tracer().events().size(), 1u);
    EXPECT_EQ(o.now(), queue.now());

    o.disable();
    o.reset();
    OBS_COUNTER_ADD("off.counter", 1);
    EXPECT_FALSE(o.metrics().has("off.counter"));
    EXPECT_TRUE(o.tracer().events().empty());
}

// ---- bench::Reporter -------------------------------------------------

TEST(ReporterTest, SlugNormalizesDisplayNames)
{
    EXPECT_EQ(bench::slug("Titan C (paper best)"), "titan_c_paper_best");
    EXPECT_EQ(bench::slug("Core i5 4 workers"), "core_i5_4_workers");
    EXPECT_EQ(bench::slug("+HBM (2x bandwidth)"), "hbm_2x_bandwidth");
}

TEST(ReporterTest, DisabledWithoutFlagAndWritesSchema)
{
    {
        char prog[] = "bench";
        char *argv[] = {prog};
        bench::Reporter off("demo", 1, argv);
        EXPECT_FALSE(off.enabled());
        EXPECT_TRUE(off.write()); // no-op success
    }

    const std::string path =
        testing::TempDir() + "/obs_test_reporter.json";
    std::string flag = "--json=" + path;
    char prog[] = "bench";
    std::vector<char *> argv = {prog, flag.data()};
    bench::Reporter rep("demo", 2, argv.data());
    EXPECT_TRUE(rep.enabled());
    rep.config("cohorts", 8.0);
    rep.config("workload", std::string("banking"));
    rep.metric("x.throughput", 123.5);
    ASSERT_TRUE(rep.write());

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();
    expectWellFormedJson(s);
    EXPECT_NE(s.find("\"bench\": \"demo\""), std::string::npos);
    EXPECT_NE(s.find("\"workload\": \"banking\""), std::string::npos);
    EXPECT_NE(s.find("\"x.throughput\": 123.5"), std::string::npos);
}

} // namespace
} // namespace rhythm::obs
