file(REMOVE_RECURSE
  "../bench/fig8_throughput_efficiency"
  "../bench/fig8_throughput_efficiency.pdb"
  "CMakeFiles/fig8_throughput_efficiency.dir/fig8_throughput_efficiency.cc.o"
  "CMakeFiles/fig8_throughput_efficiency.dir/fig8_throughput_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_throughput_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
