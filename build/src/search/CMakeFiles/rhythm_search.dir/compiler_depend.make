# Empty compiler generated dependencies file for rhythm_search.
# This may be replaced when dependencies are built.
