#include "simt/profile_cache.hh"

#include <limits>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhythm::simt {
namespace {

/** Streams one word into both halves of the 128-bit fingerprint. */
struct KeyHasher
{
    util::Fnv1a64 fnv;
    util::Mix64 mix;

    void update(uint64_t word)
    {
        fnv.update(word);
        mix.update(word);
    }

    WarpKey digest() const { return WarpKey{fnv.digest(), mix.digest()}; }
};

/** Sentinel folded in for inactive (null) lanes. */
constexpr uint64_t kNullLaneMarker = 0xdeadbeef'00000001ull;

/** Sentinel separating trace content from a fused warp's tag layout. */
constexpr uint64_t kLaneTagMarker = 0xdeadbeef'00000002ull;

} // namespace

WarpKey
warpFingerprint(std::span<const ThreadTrace *const> lanes,
                const WarpModel &model)
{
    return warpFingerprint(lanes, model, std::span<const uint32_t>{});
}

WarpKey
warpFingerprint(std::span<const ThreadTrace *const> lanes,
                const WarpModel &model,
                std::span<const uint32_t> lane_tags)
{
    RHYTHM_ASSERT(model.segmentBytes > 0);

    // Normalization base: the warp's minimum Global address, aligned
    // down to the coalescing segment so intra-segment alignment is
    // preserved (see the file comment for the invariance argument).
    uint64_t min_global = std::numeric_limits<uint64_t>::max();
    for (const ThreadTrace *lane : lanes) {
        if (!lane)
            continue;
        for (const MemOp &op : lane->memOps) {
            if (op.space == MemSpace::Global && op.addr < min_global)
                min_global = op.addr;
        }
    }
    const uint64_t base =
        min_global == std::numeric_limits<uint64_t>::max()
            ? 0
            : min_global - min_global % model.segmentBytes;

    KeyHasher h;
    h.update(static_cast<uint64_t>(model.warpWidth));
    h.update(model.segmentBytes);
    h.update(model.reconvergenceWindow);
    h.update(lanes.size());
    for (const ThreadTrace *lane : lanes) {
        if (!lane) {
            h.update(kNullLaneMarker);
            continue;
        }
        h.update(lane->blocks.size());
        for (const BlockExec &b : lane->blocks) {
            h.update((static_cast<uint64_t>(b.blockId) << 32) |
                     b.instructions);
            h.update((static_cast<uint64_t>(b.memBegin) << 32) |
                     b.memCount);
        }
        h.update(lane->memOps.size());
        for (const MemOp &op : lane->memOps) {
            const uint64_t addr =
                op.space == MemSpace::Global ? op.addr - base : op.addr;
            h.update(addr);
            h.update((static_cast<uint64_t>(op.count) << 32) | op.stride);
            h.update((static_cast<uint64_t>(op.width) << 16) |
                     (static_cast<uint64_t>(op.space) << 8) |
                     (op.isStore ? 1 : 0));
        }
    }
    // Fused warps additionally key on the per-lane tag layout. Skipped
    // entirely for empty spans so untagged keys stay byte-identical.
    if (!lane_tags.empty()) {
        RHYTHM_ASSERT(lane_tags.size() == lanes.size(),
                      "lane tags must align with lanes");
        h.update(kLaneTagMarker);
        for (uint32_t tag : lane_tags)
            h.update(tag);
    }
    return h.digest();
}

uint64_t
warpTraceBytes(std::span<const ThreadTrace *const> lanes)
{
    uint64_t bytes = 0;
    for (const ThreadTrace *lane : lanes) {
        if (!lane)
            continue;
        bytes += lane->blocks.size() * sizeof(BlockExec) +
                 lane->memOps.size() * sizeof(MemOp);
    }
    return bytes;
}

ProfileCache::ProfileCache(size_t max_entries)
    : maxEntries_(max_entries)
{
    RHYTHM_ASSERT(maxEntries_ >= 1);
}

const WarpStats *
ProfileCache::find(const WarpKey &key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return &it->second->second;
}

void
ProfileCache::insert(const WarpKey &key, const WarpStats &stats)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Refresh: equal keys imply equal stats, so only recency moves.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= maxEntries_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.emplace_front(key, stats);
    map_.emplace(key, lru_.begin());
    ++stats_.insertions;
}

void
ProfileCache::clear()
{
    map_.clear();
    lru_.clear();
}

} // namespace rhythm::simt
