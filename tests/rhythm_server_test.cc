/**
 * @file
 * Integration tests for the Rhythm server: full pipeline runs on the
 * simulated device with validated responses, cohort formation/timeout
 * behaviour, platform-variant command patterns (Titan A vs B vs C), and
 * sampling equivalence.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace rhythm::core {
namespace {

struct TestRig
{
    explicit TestRig(RhythmConfig cfg = smallConfig(),
                     simt::DeviceConfig dev_cfg = simt::DeviceConfig{})
        : db(200, 11), device(queue, dev_cfg),
          service(db), server(queue, device, service, cfg), gen(db, 77)
    {
        server.setResponseCallback(
            [this](uint64_t client, std::string_view response,
                   des::Time latency) {
                responses.emplace_back(client, response);
                latencies.push_back(latency);
            });
    }

    static RhythmConfig
    smallConfig()
    {
        RhythmConfig cfg;
        cfg.cohortSize = 32;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    /// Pre-establishes a session and generates a request of a type.
    specweb::GeneratedRequest
    request(specweb::RequestType type, uint64_t user)
    {
        simt::NullTracer null;
        const uint64_t sid = type == specweb::RequestType::Login
                                 ? 0
                                 : server.sessions().create(user, null);
        return gen.generate(type, user, sid);
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    BankingService service;
    RhythmServer server;
    specweb::WorkloadGenerator gen;
    std::vector<std::pair<uint64_t, std::string>> responses;
    std::vector<des::Time> latencies;
};

TEST(RhythmServer, FullCohortServesValidResponses)
{
    TestRig rig;
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::AccountSummary,
                               static_cast<uint64_t>(1 + i));
        ASSERT_TRUE(rig.server.injectRequest(req.raw, 1000u + i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 32u);
    EXPECT_TRUE(rig.server.drained());
    for (const auto &[client, response] : rig.responses) {
        auto v = specweb::validateResponse(
            specweb::RequestType::AccountSummary, response);
        EXPECT_TRUE(v.ok) << v.reason;
    }
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 1u);
    EXPECT_EQ(rig.server.stats().responsesCompleted, 32u);
    EXPECT_EQ(rig.server.stats().errorResponses, 0u);
}

TEST(RhythmServer, PartialCohortLaunchesOnTimeout)
{
    TestRig rig;
    for (int i = 0; i < 5; ++i) {
        auto req = rig.request(specweb::RequestType::Logout,
                               static_cast<uint64_t>(1 + i));
        ASSERT_TRUE(rig.server.injectRequest(req.raw, 2000u + i));
    }
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), 5u);
    EXPECT_GE(rig.server.stats().cohortTimeouts, 1u);
    // Latency includes the formation timeout.
    for (des::Time lat : rig.latencies)
        EXPECT_GE(lat, rig.server.config().cohortTimeout / 2);
}

TEST(RhythmServer, MixedTypesFormSeparateCohorts)
{
    TestRig rig;
    for (int i = 0; i < 16; ++i) {
        auto a = rig.request(specweb::RequestType::AccountSummary,
                             static_cast<uint64_t>(1 + i));
        auto b = rig.request(specweb::RequestType::BillPay,
                             static_cast<uint64_t>(50 + i));
        ASSERT_TRUE(rig.server.injectRequest(a.raw, 1u + 2 * i));
        ASSERT_TRUE(rig.server.injectRequest(b.raw, 2u + 2 * i));
    }
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), 32u);
    // Two typed cohorts (one per type) were launched.
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 2u);
    int summaries = 0, billpays = 0;
    for (const auto &[client, response] : rig.responses) {
        summaries += response.find("Account Summary") != std::string::npos;
        billpays += response.find("Pay a Bill") != std::string::npos;
    }
    EXPECT_EQ(summaries, 16);
    EXPECT_EQ(billpays, 16);
}

TEST(RhythmServer, LoginFlowCreatesDeviceSession)
{
    TestRig rig;
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::Login,
                               static_cast<uint64_t>(1 + i));
        ASSERT_TRUE(rig.server.injectRequest(req.raw, 3000u + i));
    }
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 32u);
    for (const auto &[client, response] : rig.responses) {
        const uint64_t sid = specweb::extractSessionId(response);
        ASSERT_NE(sid, 0u);
        simt::NullTracer null;
        EXPECT_NE(rig.server.sessions().lookup(sid, null), 0u);
    }
}

TEST(RhythmServer, UnknownPathGets404WithoutCohort)
{
    TestRig rig;
    ASSERT_TRUE(rig.server.injectRequest(
        "GET /bank/no_such_page.php HTTP/1.1\r\nHost: h\r\n\r\n", 9));
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 1u);
    EXPECT_NE(rig.responses[0].second.find("404"), std::string::npos);
    EXPECT_TRUE(rig.server.drained());
}

TEST(RhythmServer, MalformedRequestGets404Path)
{
    TestRig rig;
    ASSERT_TRUE(rig.server.injectRequest("garbage\r\n\r\n", 10));
    rig.server.flush();
    rig.queue.run();
    ASSERT_EQ(rig.responses.size(), 1u);
    EXPECT_TRUE(rig.server.drained());
}

TEST(RhythmServer, PullSourceDrainsCompletely)
{
    TestRig rig;
    int remaining = 96;
    rig.server.start([&]() -> std::optional<std::string> {
        if (remaining == 0)
            return std::nullopt;
        --remaining;
        auto req = rig.request(specweb::RequestType::CheckDetailHtml,
                               1 + static_cast<uint64_t>(remaining) % 100);
        return req.raw;
    });
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), 96u);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.server.stats().cohortsLaunched, 3u);
}

TEST(RhythmServer, TitanAUsesPcieAndHostBackend)
{
    RhythmConfig cfg = TestRig::smallConfig();
    cfg.backendOnDevice = false;
    cfg.networkOverPcie = true;
    TestRig rig(cfg);
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::BillPay,
                               static_cast<uint64_t>(1 + i));
        rig.server.injectRequest(req.raw, 100u + i);
    }
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), 32u);
    const auto dstats = rig.device.stats();
    // Requests in, backend requests out, backend responses in,
    // responses out.
    EXPECT_GE(dstats.copiesToDevice, 2u);
    EXPECT_GE(dstats.copiesToHost, 2u);
    EXPECT_GT(dstats.bytesToDevice, 0u);
    EXPECT_GT(dstats.bytesToHost, 0u);
}

TEST(RhythmServer, TitanBAvoidsPcieCopies)
{
    TestRig rig; // smallConfig = Titan B style
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::BillPay,
                               static_cast<uint64_t>(1 + i));
        rig.server.injectRequest(req.raw, 100u + i);
    }
    rig.queue.run();
    EXPECT_EQ(rig.responses.size(), 32u);
    const auto dstats = rig.device.stats();
    EXPECT_EQ(dstats.copiesToDevice, 0u);
    EXPECT_EQ(dstats.copiesToHost, 0u);
}

TEST(RhythmServer, TitanCOffloadSkipsResponseTranspose)
{
    RhythmConfig base = TestRig::smallConfig();
    RhythmConfig offload = base;
    offload.offloadResponseTranspose = true;

    auto kernels = [](const RhythmConfig &cfg) {
        TestRig rig(cfg);
        for (int i = 0; i < 32; ++i) {
            auto req = rig.request(specweb::RequestType::Logout,
                                   static_cast<uint64_t>(1 + i));
            rig.server.injectRequest(req.raw, 100u + i);
        }
        rig.queue.run();
        EXPECT_EQ(rig.responses.size(), 32u);
        return rig.device.stats().kernelsLaunched;
    };
    // The offloaded variant launches exactly one fewer kernel (the
    // response transpose).
    EXPECT_EQ(kernels(base), kernels(offload) + 1);
}

TEST(RhythmServer, PaddingReportedWhenEnabled)
{
    TestRig rig;
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::AccountSummary,
                               static_cast<uint64_t>(1 + i));
        rig.server.injectRequest(req.raw, 100u + i);
    }
    rig.queue.run();
    // Dynamic content (names, balances) differs per user, so padding
    // must have been inserted.
    EXPECT_GT(rig.server.stats().paddingBytes, 0u);
    EXPECT_GT(rig.server.stats().responseBytes, 0u);
}

TEST(RhythmServer, LaneSamplingPreservesThroughputShape)
{
    // Full execution vs 1/2 sampling: completion time should agree
    // within a few percent (profiles are scaled).
    auto runWith = [](uint32_t sample) {
        RhythmConfig cfg = TestRig::smallConfig();
        cfg.cohortSize = 64;
        cfg.laneSample = sample;
        TestRig rig(cfg);
        for (int i = 0; i < 64; ++i) {
            auto req = rig.request(specweb::RequestType::Transfer,
                                   static_cast<uint64_t>(1 + i % 100));
            rig.server.injectRequest(req.raw, 100u + i);
        }
        rig.queue.run();
        EXPECT_EQ(rig.responses.size(), 64u);
        return des::toSeconds(rig.queue.now());
    };
    const double full = runWith(0);
    const double sampled = runWith(32);
    EXPECT_NEAR(sampled / full, 1.0, 0.10);
}

TEST(RhythmServer, SimdEfficiencyIsHighForUniformCohorts)
{
    TestRig rig;
    for (int i = 0; i < 32; ++i) {
        auto req = rig.request(specweb::RequestType::ChangeProfile,
                               static_cast<uint64_t>(1 + i));
        rig.server.injectRequest(req.raw, 100u + i);
    }
    rig.queue.run();
    const auto &stats = rig.server.stats();
    const double eff = stats.processLaneInstructions /
                       (stats.processIssueSlots * 32.0);
    EXPECT_GT(eff, 0.85);
}

TEST(RhythmServer, MemoryFootprintScalesWithConfig)
{
    TestRig small;
    RhythmConfig big_cfg = TestRig::smallConfig();
    big_cfg.cohortSize = 4096;
    big_cfg.cohortContexts = 8;
    des::EventQueue q2;
    simt::Device dev2(q2, simt::DeviceConfig{});
    backend::BankDb db2(10, 1);
    BankingService svc2(db2);
    RhythmServer big(q2, dev2, svc2, big_cfg);
    EXPECT_GT(big.memoryFootprintBytes(),
              small.server.memoryFootprintBytes());
    // The paper's configuration fits the Titan's 6 GB.
    EXPECT_LT(big.memoryFootprintBytes(), 6ull << 30);
}

TEST(RhythmServer, LatenciesAreMonotoneWithQueueing)
{
    TestRig rig;
    // Two back-to-back cohorts of the same type: the second cohort's
    // requests wait for the first, so its latencies are at least the
    // first cohort's minimum.
    for (int i = 0; i < 64; ++i) {
        auto req = rig.request(specweb::RequestType::Profile,
                               static_cast<uint64_t>(1 + i % 100));
        rig.server.injectRequest(req.raw, 100u + i);
    }
    rig.queue.run();
    ASSERT_EQ(rig.latencies.size(), 64u);
    EXPECT_GT(rig.server.stats().latencyMs.percentile(99.0), 0.0);
}

} // namespace
} // namespace rhythm::core
