/**
 * @file
 * Section 4.3.2 ablation: the buffer-layout design choices. Compares,
 * on Titan B, the three data-layout strategies the paper discusses:
 *
 *  1. transposed buffers + whitespace padding (the Rhythm design),
 *  2. transposed buffers without padding (misaligned lane pointers),
 *  3. row-major buffers (uncoalesced stores).
 *
 * The paper motivates transpose+padding qualitatively ("performs
 * poorly" for alternatives); this bench quantifies the gap.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("ablation_layout", argc, argv);
    bench::banner("Ablation: cohort buffer layout (Section 4.3.2)",
                  "Section 4.3.2 (transpose + whitespace padding)");

    struct Config
    {
        const char *name;
        bool transpose;
        bool pad;
    };
    const Config configs[] = {
        {"transposed + padded (Rhythm)", true, true},
        {"transposed, no padding", true, false},
        {"row-major (no transpose)", false, false},
    };

    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.recordConfig(report);

    TableWriter table({"layout", "KReqs/s", "avg latency ms",
                       "device util", "SIMD eff"});
    for (const Config &cfg : configs) {
        platform::TitanVariant b = platform::titanB();
        b.server.transposeBuffers = cfg.transpose;
        b.server.padResponses = cfg.pad;
        platform::IsolatedRunOptions opts;
        opts.cohorts = 10;
        opts.users = 2000;
        opts.laneSample = 128;
        faults.apply(opts);
        overlap.apply(opts);
        platform::TypeRunResult r = platform::runIsolatedType(
            b, specweb::RequestType::AccountSummary, opts);
        table.addRow({cfg.name, bench::fmt(r.throughput / 1e3, 0),
                      bench::fmt(r.avgLatencyMs, 2),
                      bench::fmt(r.deviceUtilization, 2),
                      bench::fmt(r.simdEfficiency, 2)});
        const std::string key =
            cfg.transpose ? (cfg.pad ? "transposed_padded"
                                     : "transposed_unpadded")
                          : "row_major";
        report.metric(key + ".throughput", r.throughput);
        report.metric(key + ".simd_efficiency", r.simdEfficiency);
    }
    table.printAscii(std::cout);
    std::cout << "Expected shape (paper): row-major stores are "
                 "uncoalesced (up to 32x DRAM\ntraffic) and unpadded "
                 "transposed buffers lose alignment on dynamic "
                 "content;\nthe Rhythm layout wins on throughput.\n";
    if (!report.write())
        return 1;
    return 0;
}
