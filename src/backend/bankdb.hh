/**
 * @file
 * In-memory bank database: the data substrate behind the SPECWeb2009
 * Banking workload (the role Besim plays in the official harness).
 *
 * The database is populated deterministically from a seed so every
 * experiment is reproducible. All mutating operations are real (balances
 * move, payees persist), which lets the test suite assert end-to-end
 * semantics of the 14 Banking request types.
 */

#ifndef RHYTHM_BACKEND_BANKDB_HH
#define RHYTHM_BACKEND_BANKDB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace rhythm::backend {

/** A customer bank account. */
struct Account
{
    uint64_t accountId = 0;
    uint64_t userId = 0;
    /** "checking" or "savings". */
    bool isChecking = true;
    int64_t balanceCents = 0;
};

/** One ledger entry. */
struct Transaction
{
    uint64_t txId = 0;
    uint64_t accountId = 0;
    int64_t amountCents = 0; //!< Negative = debit.
    uint32_t date = 0;       //!< Days since epoch (synthetic calendar).
    std::string description;
    bool hasCheck = false;   //!< True if a check image is associated.
};

/** A bill-pay payee registered by a user. */
struct Payee
{
    uint64_t payeeId = 0;
    uint64_t userId = 0;
    std::string name;
    std::string address;
    uint64_t externalAccount = 0;
};

/** A scheduled or executed bill payment. */
struct BillPayment
{
    uint64_t paymentId = 0;
    uint64_t userId = 0;
    uint64_t payeeId = 0;
    int64_t amountCents = 0;
    uint32_t date = 0;
    bool executed = false;
};

/** Customer profile data. */
struct Profile
{
    uint64_t userId = 0;
    std::string name;
    std::string address;
    std::string email;
    std::string phone;
    std::string password;
};

/** A check-book order. */
struct CheckOrder
{
    uint64_t orderId = 0;
    uint64_t userId = 0;
    uint32_t style = 0;
    uint32_t quantity = 0;
    bool placed = false;
};

/**
 * The bank's data store.
 *
 * Lookups are O(1) by user id (dense vectors); per-user collections are
 * small (the SPECWeb data model), so linear scans inside a user are fine.
 */
class BankDb
{
  public:
    /**
     * Populates the database.
     * @param num_users Users are ids 1..num_users.
     * @param seed Seed for the deterministic generator.
     */
    explicit BankDb(uint64_t num_users, uint64_t seed = 12345);

    /** Number of users. */
    uint64_t numUsers() const { return numUsers_; }

    /** True if the user id exists. */
    bool validUser(uint64_t user_id) const;

    /** Checks a password; false for unknown users. */
    bool authenticate(uint64_t user_id, std::string_view password) const;

    /** Returns the profile (user id must be valid). */
    const Profile &profile(uint64_t user_id) const;

    /** Updates profile fields; empty strings leave a field unchanged. */
    void updateProfile(uint64_t user_id, std::string_view address,
                       std::string_view email, std::string_view phone);

    /** Returns the user's accounts (always 2: checking, savings). */
    std::vector<const Account *> accounts(uint64_t user_id) const;

    /** Returns an account by id, or nullptr. */
    const Account *account(uint64_t account_id) const;

    /**
     * Returns up to @p max most recent transactions of an account
     * (newest first).
     */
    std::vector<const Transaction *> transactions(uint64_t account_id,
                                                  size_t max) const;

    /** Returns a transaction by id, or nullptr. */
    const Transaction *transaction(uint64_t tx_id) const;

    /**
     * Returns the ids of all transactions that carry a check image
     * (used by the workload generator for check-detail requests).
     */
    std::vector<uint64_t> checkTransactionIds() const;

    /** Returns the user's payees. */
    std::vector<const Payee *> payees(uint64_t user_id) const;

    /** Adds a payee; returns its id. */
    uint64_t addPayee(uint64_t user_id, std::string_view name,
                      std::string_view address, uint64_t external_account);

    /**
     * Schedules a bill payment and debits checking.
     * @return Payment id, or 0 if the payee is unknown or funds are
     *         insufficient.
     */
    uint64_t payBill(uint64_t user_id, uint64_t payee_id,
                     int64_t amount_cents, uint32_t date);

    /** Returns the user's bill payments within [from, to] (by date). */
    std::vector<const BillPayment *> billPayments(uint64_t user_id,
                                                  uint32_t from,
                                                  uint32_t to) const;

    /**
     * Moves funds between two of the user's accounts.
     * @return New transaction id, or 0 on invalid accounts/funds.
     */
    uint64_t transfer(uint64_t user_id, uint64_t from_account,
                      uint64_t to_account, int64_t amount_cents);

    /**
     * Debits the user's checking account toward a peer user whose
     * state lives in another shard's database — phase 1 of a
     * cross-shard transfer (DESIGN.md 6k). Balance-checked like
     * transfer(); the matching credit happens on the peer's shard via
     * externalCredit().
     * @return New transaction id, or 0 on invalid amount/funds.
     */
    uint64_t externalDebit(uint64_t user_id, uint64_t peer_user,
                           int64_t amount_cents);

    /**
     * Credits the user's checking account from a peer on another
     * shard — phase 2 of a cross-shard transfer.
     * @return New transaction id, or 0 on invalid amount.
     */
    uint64_t externalCredit(uint64_t user_id, uint64_t peer_user,
                            int64_t amount_cents);

    /** Creates a provisional check order; returns order id. */
    uint64_t orderCheck(uint64_t user_id, uint32_t style, uint32_t quantity);

    /** Finalizes a provisional order. @return false if unknown. */
    bool placeCheckOrder(uint64_t user_id, uint64_t order_id);

    /** Returns a check order by id, or nullptr. */
    const CheckOrder *checkOrder(uint64_t order_id) const;

    /**
     * Order-sensitive fingerprint of the complete database state
     * (profiles, balances, ledgers, payees, payments, orders and the
     * id allocators). Two databases with equal digests went through
     * the same mutation history; the recovery-equivalence harness
     * compares digests between faulty and fault-free runs. BankDb is
     * plainly copyable, so a crash-recovery snapshot is an ordinary
     * copy and restore is copy-assignment.
     */
    uint64_t digest() const;

    /** Account id of a user's checking account. */
    static uint64_t checkingId(uint64_t user_id) { return user_id * 10 + 1; }
    /** Account id of a user's savings account. */
    static uint64_t savingsId(uint64_t user_id) { return user_id * 10 + 2; }

  private:
    struct UserData
    {
        Profile profile;
        Account checking;
        Account savings;
        std::vector<Transaction> txs; //!< Newest last.
        std::vector<Payee> payees;
        std::vector<BillPayment> payments;
        std::vector<CheckOrder> orders;
    };

    UserData &user(uint64_t user_id);
    const UserData &user(uint64_t user_id) const;

    uint64_t numUsers_;
    std::vector<UserData> users_; //!< Index = user id - 1.
    uint64_t nextTxId_;
    uint64_t nextPayeeId_;
    uint64_t nextPaymentId_;
    uint64_t nextOrderId_;
};

} // namespace rhythm::backend

#endif // RHYTHM_BACKEND_BANKDB_HH
