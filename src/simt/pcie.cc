#include "simt/pcie.hh"

#include "util/logging.hh"

namespace rhythm::simt {

PcieTransfer
PcieLink::plan(uint64_t bytes, const std::function<bool()> &frame_corrupt,
               bool include_latency) const
{
    RHYTHM_ASSERT(frame_corrupt, "frame corruption oracle required");
    const uint64_t frame_payload = config_->pcieFrameBytes;
    RHYTHM_ASSERT(frame_payload > 0, "frame size must be positive");

    PcieTransfer t;
    t.frames = (bytes + frame_payload - 1) / frame_payload;
    for (uint64_t f = 0; f < t.frames; ++f) {
        const uint64_t payload =
            f + 1 < t.frames ? frame_payload
                             : bytes - f * frame_payload;
        const uint64_t frame_wire = payload + config_->pcieFrameOverheadBytes;
        t.wireBytes += frame_wire;
        // Initial transmission, then bounded retransmits. A frame that
        // stays corrupt through the whole budget forces a retrain and
        // is assumed through afterwards (the link is re-equalized), so
        // the transfer always terminates.
        uint32_t attempts_left = config_->pcieMaxRetransmits;
        while (frame_corrupt()) {
            ++t.crcErrors;
            if (attempts_left == 0) {
                ++t.retrains;
                break;
            }
            --attempts_left;
            t.wireBytes += frame_wire;
            t.retransmittedBytes += frame_wire;
        }
    }

    const double wire_seconds = static_cast<double>(t.wireBytes) /
                                (config_->pcieBandwidthGBs * 1e9);
    t.duration = des::fromSeconds(wire_seconds) +
                 t.retrains * config_->pcieRetrainTime;
    if (include_latency)
        t.duration += config_->pcieLatency;
    return t;
}

PcieTransfer
PcieLink::transfer(uint64_t bytes,
                   const std::function<bool()> &frame_corrupt) const
{
    return plan(bytes, frame_corrupt, /*include_latency=*/true);
}

PcieTransfer
PcieLink::transferChunk(uint64_t bytes,
                        const std::function<bool()> &frame_corrupt) const
{
    return plan(bytes, frame_corrupt, /*include_latency=*/false);
}

} // namespace rhythm::simt
