file(REMOVE_RECURSE
  "../bench/ext_chat_workload"
  "../bench/ext_chat_workload.pdb"
  "CMakeFiles/ext_chat_workload.dir/ext_chat_workload.cc.o"
  "CMakeFiles/ext_chat_workload.dir/ext_chat_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
