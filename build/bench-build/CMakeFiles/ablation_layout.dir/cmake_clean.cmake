file(REMOVE_RECURSE
  "../bench/ablation_layout"
  "../bench/ablation_layout.pdb"
  "CMakeFiles/ablation_layout.dir/ablation_layout.cc.o"
  "CMakeFiles/ablation_layout.dir/ablation_layout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
