/**
 * @file
 * The device-resident HTTP session array (paper Section 4.3.1).
 *
 * A hash table whose bucket count equals the cohort size, so that each
 * request thread in a cohort accesses a unique bucket conflict-free.
 * Insertion picks a bucket from a hash of the user id; the session
 * identifier encodes (bucket, node) so lookups are O(1); collisions on
 * insertion fall back to a linear probe within the bucket (O(n) worst
 * case); deletion is O(1).
 *
 * All operations are instrumented: the session array lives in device
 * global memory and is touched by every request, so its access pattern
 * matters to the cohort kernels.
 */

#ifndef RHYTHM_RHYTHM_SESSION_ARRAY_HH
#define RHYTHM_RHYTHM_SESSION_ARRAY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "specweb/context.hh"
#include "util/rng.hh"

namespace rhythm::core {

/** Basic-block identifier base for the session array. */
inline constexpr uint32_t kSessionBlockBase = 5000;

/**
 * Fixed-capacity session hash array.
 *
 * Device layout: Node records of kNodeBytes each, bucket-major, starting
 * at a configurable device base address (memory ops are recorded against
 * it so warp accesses to distinct buckets coalesce exactly as the
 * paper's design intends).
 */
class SessionArray : public specweb::SessionProvider
{
  public:
    /** Bytes per session node (paper: 40 B per session). */
    static constexpr uint32_t kNodeBytes = 40;

    /**
     * @param buckets Number of buckets; equals the cohort size.
     * @param nodes_per_bucket Bucket depth; total capacity is the
     *        product.
     * @param device_base Simulated device address of the array.
     * @param seed Seed for randomized probe starts.
     */
    SessionArray(uint32_t buckets, uint32_t nodes_per_bucket,
                 uint64_t device_base = 0x2000'0000, uint64_t seed = 1);

    uint64_t create(uint64_t user_id, simt::TraceRecorder &rec) override;
    uint64_t lookup(uint64_t session_id, simt::TraceRecorder &rec) override;
    bool destroy(uint64_t session_id, simt::TraceRecorder &rec) override;

    /** Number of live sessions. */
    uint64_t liveSessions() const { return live_; }

    /** Total capacity (buckets × depth). */
    uint64_t capacity() const
    {
        return static_cast<uint64_t>(buckets_) * nodesPerBucket_;
    }

    /** Device memory footprint in bytes. */
    uint64_t footprintBytes() const { return capacity() * kNodeBytes; }

    /** Number of insertions that needed a probe (collision metric). */
    uint64_t collisions() const { return collisions_; }

    /**
     * Pre-populates the array with @p count random user sessions
     * (the paper's isolation-test methodology, Section 5.3.1).
     * @param user_filter Optional predicate on the drawn user id:
     *        rejected draws consume the RNG draw but create nothing.
     *        A fleet passes its home-shard predicate so each shard's
     *        pool holds exactly its homed users, while the shared RNG
     *        sequence keeps pools deterministic per (seed, filter).
     * @return (session id, user id) pairs for the created sessions.
     */
    std::vector<std::pair<uint64_t, uint64_t>>
    populate(uint64_t count, uint64_t max_user_id,
             const std::function<bool(uint64_t)> &user_filter = nullptr);

    /**
     * Deep snapshot of the array for crash-recovery checkpoints: node
     * contents, live/collision counters and — critically — the probe
     * RNG state, so that replaying the journaled create() sequence
     * from a restored snapshot draws the exact same probe starts and
     * reproduces the original session ids.
     */
    struct Snapshot
    {
        std::vector<uint64_t> userIds;
        uint64_t live = 0;
        uint64_t collisions = 0;
        std::array<uint64_t, 4> rngState{};
    };

    /** Captures the full mutable state. */
    Snapshot snapshot() const;

    /** Restores state captured with snapshot(). */
    void restore(const Snapshot &snap);

    /** Order-sensitive fingerprint of occupancy + counters + RNG. */
    uint64_t digest() const;

    /**
     * Observer invoked after every successful create (created=true,
     * with the new session id and user) and destroy (created=false,
     * user=0). The recovery layer uses it to journal session mutations
     * into the backend's write-ahead log; unset by default, adding
     * zero work to the unjournaled path.
     */
    void setMutationHook(
        std::function<void(bool created, uint64_t session_id,
                           uint64_t user_id)>
            hook)
    {
        mutationHook_ = std::move(hook);
    }

  private:
    struct Node
    {
        uint64_t userId = 0; //!< 0 = free.
    };

    uint64_t nodeAddr(uint32_t bucket, uint32_t node) const;
    bool decode(uint64_t session_id, uint32_t &bucket,
                uint32_t &node) const;

    uint32_t buckets_;
    uint32_t nodesPerBucket_;
    uint64_t deviceBase_;
    Rng rng_;
    std::vector<Node> nodes_; //!< bucket-major.
    uint64_t live_ = 0;
    uint64_t collisions_ = 0;
    std::function<void(bool, uint64_t, uint64_t)> mutationHook_;
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_SESSION_ARRAY_HH
