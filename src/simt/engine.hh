/**
 * @file
 * Parallel SM execution engine.
 *
 * The engine simulates the independent warps of a kernel launch (and of
 * whole batches of launches) concurrently on a host worker pool, while
 * producing results byte-identical to the serial path for any thread
 * count. The determinism contract (see DESIGN.md "Parallel engine"):
 *
 *  - simulateWarp() is a pure function of one warp's traces, and every
 *    WarpStats field is an integer, so per-warp results are exact and
 *    thread-placement-independent.
 *  - Each warp writes only its own pre-sized result slot; aggregation
 *    happens after the fork/join barrier, on the calling thread, in
 *    canonical order: launch index, then warp index within the launch.
 *    Integer merges in a fixed order are bit-exact, so the aggregate is
 *    the same whether warps were simulated by 1 thread or 8.
 *  - Per-SM accounting assigns warp w of a launch to SM (w % numSms) —
 *    the round-robin rasterization of blocks onto SMs — and merges into
 *    the SM counters in the same canonical order.
 *
 * Parallelism lives strictly *between* DES events: the engine runs
 * inside one event callback (profiling a cohort's stage before the
 * launch command is enqueued), joins before returning, and never touches
 * the event queue from a worker. The DES schedule is therefore
 * unaffected by the thread count; EventQueue::orderHash() audits this.
 *
 * Warp-equivalence memoization: with a ProfileCache attached
 * (setProfileCache), the engine fingerprints every warp, simulates one
 * representative per equivalence class, replicates its WarpStats to
 * the other members, and serves repeated classes straight from the
 * cross-launch LRU. Because equal fingerprints imply bit-equal
 * WarpStats (see profile_cache.hh), every downstream result is
 * byte-identical to the uncached path; classification and cache
 * mutation happen serially in canonical warp order, so hit/miss
 * sequences are --sim-threads-invariant too.
 */

#ifndef RHYTHM_SIMT_ENGINE_HH
#define RHYTHM_SIMT_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simt/kernel.hh"
#include "simt/profile_cache.hh"
#include "simt/warp.hh"
#include "util/thread_pool.hh"

namespace rhythm::simt {

/** Parallel warp-simulation engine with per-SM deterministic accounting. */
class Engine
{
  public:
    /** Deterministic per-SM accounting, merged in canonical order. */
    struct SmCounters
    {
        /** Launches that placed at least one warp on this SM. */
        uint64_t launches = 0;
        /** Warps simulated on this SM. */
        uint64_t warps = 0;
        /** Aggregate warp statistics of this SM's warps. */
        WarpStats stats;

        bool operator==(const SmCounters &) const = default;
    };

    /** One kernel launch to profile; inputs are borrowed, not owned. */
    struct Launch
    {
        const std::vector<const ThreadTrace *> *traces = nullptr;
        const WarpModel *model = nullptr;
        std::string name;
        /**
         * Optional per-lane type tags, aligned index-for-index with
         * @p traces (fused mixed-type launches set this). When present
         * the memoization fingerprint keys on the per-warp tag slice as
         * well, so mixed-type warps never alias single-type ones (see
         * profile_cache.hh). Null means untagged — keys are
         * byte-identical to pre-fusion builds.
         */
        const std::vector<uint32_t> *laneTags = nullptr;
    };

    /**
     * Creates an engine for a device with @p num_sms SMs. When @p pool
     * is null the engine uses util::simPool() (resolved at each region,
     * so a later setSimThreads() takes effect).
     */
    explicit Engine(int num_sms, util::ThreadPool *pool = nullptr);

    /** SMs this engine accounts across. */
    int numSms() const { return numSms_; }

    /**
     * Profiles one kernel launch, simulating its warps in parallel.
     * Byte-identical to KernelProfile::fromTraces for any thread count.
     */
    KernelProfile profile(const std::vector<const ThreadTrace *> &traces,
                          const WarpModel &model, std::string name = "");

    /**
     * Profiles a batch of independent launches in one parallel region
     * (all warps of all launches form a single index space, so small
     * launches cannot strand workers). Results are in launch order.
     */
    std::vector<KernelProfile> profileMany(const std::vector<Launch> &launches);

    /** Per-SM counters, indexed by SM; stable across thread counts. */
    const std::vector<SmCounters> &smCounters() const { return sms_; }

    /** Total launches profiled since construction / resetCounters(). */
    uint64_t launches() const { return launches_; }

    /** Total warps simulated since construction / resetCounters(). */
    uint64_t warps() const { return warps_; }

    /** Clears the per-SM counters and launch/warp totals. */
    void resetCounters();

    /**
     * Attaches a warp profile cache (not owned; nullptr detaches, the
     * default). The cache may be shared by several engines and
     * outlives every profile call that uses it.
     */
    void setProfileCache(ProfileCache *cache) { cache_ = cache; }

    /** The attached profile cache, or null. */
    ProfileCache *profileCache() const { return cache_; }

  private:
    util::ThreadPool &pool() const;

    int numSms_;
    util::ThreadPool *pool_;
    ProfileCache *cache_ = nullptr;
    std::vector<SmCounters> sms_;
    uint64_t launches_ = 0;
    uint64_t warps_ = 0;
};

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_ENGINE_HH
