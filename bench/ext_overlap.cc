/**
 * @file
 * Extension experiment: transfer/compute overlap acceptance (DESIGN.md
 * §6h).
 *
 * Runs the most PCIe-bound Banking request types on Titan A twice —
 * overlap off (the paper's serial Reader→Parser→Process pipeline, one
 * copy engine, whole-buffer transfers) and overlap on (double-buffered
 * parser batches, pooled copy engines, chunked scissored transfers) —
 * and gates the speedup at ≥1.2x per type at unchanged raw link
 * bandwidth. The client-visible responses must be identical in both
 * modes: the run checks request counts and response bytes per request,
 * and CI separately compares rhythm_sim --digest-out fingerprints.
 *
 * Only the PCIe-bound types are gated. Verbose loose-fit types
 * (account summary, bill pay status output) ship full buffers either
 * way, gain nothing from scissoring, and pay a small chunk-arbitration
 * latency — they are covered by the fig9 baseline, not this gate.
 */

#include <iostream>

#include "bench/common.hh"
#include "platform/titan.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("ext_overlap", argc, argv);
    bench::banner("Extension: PCIe transfer/compute overlap acceptance",
                  "DESIGN.md 6h (>=1.2x on PCIe-bound types, responses "
                  "identical)");

    // The gated set: highest h2d pressure per byte of useful payload
    // (small POSTs whose occupied slot bytes are a fraction of the 4 KB
    // request slot) plus the session-churn logout path.
    const specweb::RequestType gated[] = {
        specweb::RequestType::PostPayee,
        specweb::RequestType::Profile,
        specweb::RequestType::PostTransfer,
        specweb::RequestType::Logout,
    };

    platform::TitanVariant a = platform::titanA();
    platform::IsolatedRunOptions base;
    base.cohorts = 10;
    base.users = 2000;
    base.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(base);
    faults.recordConfig(report);

    // --copy-engines / --copy-chunk-kb tune the overlapped
    // configuration; the off run always uses the legacy single-engine
    // whole-buffer path.
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    platform::IsolatedRunOptions on = base;
    on.overlapPipeline = true;
    on.copyEngines = overlap.copyEngines > 0
                         ? overlap.copyEngines
                         : bench::OverlapFlags::kDefaultEngines;
    on.copyChunkBytes = overlap.copyChunkBytes > 0
                            ? overlap.copyChunkBytes
                            : bench::OverlapFlags::kDefaultChunkBytes;

    // check_bench.py requires these keys for this bench: the overlap
    // configuration under test must be reproducible from the document.
    report.config("overlap", 1.0);
    report.config("copy_engines", static_cast<double>(on.copyEngines));
    report.config("copy_chunk_kb", on.copyChunkBytes / 1024.0);
    report.config("cohorts", base.cohorts);
    report.config("users", base.users);
    report.config("lane_sample", base.laneSample);

    TableWriter table({"request type", "off KReqs/s", "on KReqs/s",
                       "speedup", "overlap frac", "resp B/req equal"});
    bool pass = true;
    double min_speedup = 1e9;
    for (specweb::RequestType type : gated) {
        const specweb::RequestTypeInfo &info = specweb::typeInfo(type);
        const platform::TypeRunResult off =
            platform::runIsolatedType(a, type, base);
        const platform::TypeRunResult with =
            platform::runIsolatedType(a, type, on);
        const double speedup =
            off.throughput > 0.0 ? with.throughput / off.throughput : 0.0;
        min_speedup = std::min(min_speedup, speedup);
        // Same completed requests and the same client-visible response
        // bytes: overlap reorders and scissors transfers, it must never
        // change what a client receives.
        const bool same_responses =
            with.requests == off.requests &&
            with.responseBytesPerRequest == off.responseBytesPerRequest;
        pass = pass && speedup >= 1.2 && same_responses;

        const std::string key = bench::slug(info.name);
        report.metric(key + ".speedup", speedup);
        report.metric(key + ".throughput", with.throughput);
        report.metric(key + ".baseline_throughput", off.throughput);
        report.metric(key + ".overlap_fraction", with.overlapFraction);
        report.metric(key + ".responses_identical",
                      same_responses ? 1.0 : 0.0);
        table.addRow({std::string(info.name),
                      bench::fmt(off.throughput / 1e3, 1),
                      bench::fmt(with.throughput / 1e3, 1),
                      bench::fmt(speedup, 2),
                      bench::fmt(with.overlapFraction, 2),
                      same_responses ? "yes" : "NO"});
    }
    table.printAscii(std::cout);
    std::cout << "Minimum gated speedup: " << bench::fmt(min_speedup, 2)
              << "x (gate: >= 1.2x at unchanged link bandwidth)\n"
              << "Verdict: " << (pass ? "PASS" : "FAIL") << "\n";
    report.metric("min_speedup", min_speedup);
    report.metric("acceptance_pass", pass ? 1.0 : 0.0);
    if (!report.write())
        return 1;
    return pass ? 0 : 1;
}
