file(REMOVE_RECURSE
  "CMakeFiles/rhythm_core.dir/banking_service.cc.o"
  "CMakeFiles/rhythm_core.dir/banking_service.cc.o.d"
  "CMakeFiles/rhythm_core.dir/buffers.cc.o"
  "CMakeFiles/rhythm_core.dir/buffers.cc.o.d"
  "CMakeFiles/rhythm_core.dir/cohort.cc.o"
  "CMakeFiles/rhythm_core.dir/cohort.cc.o.d"
  "CMakeFiles/rhythm_core.dir/server.cc.o"
  "CMakeFiles/rhythm_core.dir/server.cc.o.d"
  "CMakeFiles/rhythm_core.dir/session_array.cc.o"
  "CMakeFiles/rhythm_core.dir/session_array.cc.o.d"
  "librhythm_core.a"
  "librhythm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
