#include "http/http.hh"

#include <cstdio>

#include "util/logging.hh"

namespace rhythm::http {

std::string_view
methodName(Method method)
{
    switch (method) {
      case Method::Get:
        return "GET";
      case Method::Post:
        return "POST";
    }
    return "GET";
}

std::string_view
Request::param(std::string_view key) const
{
    for (const auto &[k, v] : params) {
        if (k == key)
            return v;
    }
    return {};
}

bool
Request::hasParam(std::string_view key) const
{
    for (const auto &[k, v] : params) {
        if (k == key)
            return true;
    }
    return false;
}

std::string_view
statusReason(Status status)
{
    switch (status) {
      case Status::Ok:
        return "OK";
      case Status::Found:
        return "Found";
      case Status::BadRequest:
        return "Bad Request";
      case Status::NotFound:
        return "Not Found";
      case Status::InternalError:
        return "Internal Server Error";
    }
    return "Unknown";
}

ResponseBuilder::ResponseBuilder(Status status) : status_(status) {}

void
ResponseBuilder::addHeader(std::string_view name, std::string_view value)
{
    headers_.emplace_back(std::string(name), std::string(value));
}

std::string
ResponseBuilder::serialize() const
{
    std::string out;
    out.reserve(body_.size() + 256);
    char line[128];
    std::snprintf(line, sizeof(line), "HTTP/1.1 %u ",
                  static_cast<unsigned>(status_));
    out.append(line);
    out.append(statusReason(status_));
    out.append("\r\n");
    for (const auto &[name, value] : headers_) {
        out.append(name);
        out.append(": ");
        out.append(value);
        out.append("\r\n");
    }
    out.append("Content-Length: ");
    out.append(std::to_string(body_.size()));
    out.append("\r\n\r\n");
    out.append(body_);
    return out;
}

std::string
buildRequest(Method method,
             std::string_view path,
             const std::vector<std::pair<std::string, std::string>> &params,
             std::string_view cookie)
{
    std::string form;
    for (const auto &[k, v] : params) {
        if (!form.empty())
            form.push_back('&');
        form.append(k);
        form.push_back('=');
        form.append(v);
    }

    std::string out;
    out.append(methodName(method));
    out.push_back(' ');
    out.append(path);
    if (method == Method::Get && !form.empty()) {
        out.push_back('?');
        out.append(form);
    }
    out.append(" HTTP/1.1\r\nHost: bank.example.com\r\n");
    if (!cookie.empty()) {
        out.append("Cookie: ");
        out.append(cookie);
        out.append("\r\n");
    }
    if (method == Method::Post) {
        out.append("Content-Type: application/x-www-form-urlencoded\r\n");
        out.append("Content-Length: ");
        out.append(std::to_string(form.size()));
        out.append("\r\n\r\n");
        out.append(form);
    } else {
        out.append("\r\n");
    }
    return out;
}

} // namespace rhythm::http
