#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace rhythm::obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

JsonWriter::JsonWriter(std::ostream &out, int indent)
    : out_(out), indent_(indent)
{
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    out_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            out_ << ' ';
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    Level &top = stack_.back();
    if (top.expectValue) {
        // Value follows its key on the same line.
        top.expectValue = false;
        return;
    }
    if (!top.empty)
        out_ << ',';
    top.empty = false;
    newline();
}

void
JsonWriter::beginObject()
{
    separate();
    out_ << '{';
    stack_.push_back(Level{true, true, false});
}

void
JsonWriter::endObject()
{
    const bool empty = stack_.empty() ? true : stack_.back().empty;
    if (!stack_.empty())
        stack_.pop_back();
    if (!empty)
        newline();
    out_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ << '[';
    stack_.push_back(Level{false, true, false});
}

void
JsonWriter::endArray()
{
    const bool empty = stack_.empty() ? true : stack_.back().empty;
    if (!stack_.empty())
        stack_.pop_back();
    if (!empty)
        newline();
    out_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    out_ << '"' << jsonEscape(k) << "\": ";
    if (!stack_.empty())
        stack_.back().expectValue = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    out_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string_view(v));
}

void
JsonWriter::value(double v)
{
    separate();
    out_ << jsonNumber(v);
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(int64_t v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(int v)
{
    separate();
    out_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    separate();
    out_ << "null";
}

void
JsonWriter::raw(std::string_view json)
{
    separate();
    out_ << json;
}

} // namespace rhythm::obs
