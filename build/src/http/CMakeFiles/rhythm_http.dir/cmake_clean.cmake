file(REMOVE_RECURSE
  "CMakeFiles/rhythm_http.dir/http.cc.o"
  "CMakeFiles/rhythm_http.dir/http.cc.o.d"
  "CMakeFiles/rhythm_http.dir/parser.cc.o"
  "CMakeFiles/rhythm_http.dir/parser.cc.o.d"
  "librhythm_http.a"
  "librhythm_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
