#include "specweb/workload.hh"

#include <algorithm>

#include "http/http.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rhythm::specweb {
namespace {

/** Expected <h2> marker per page type (validator content check). */
std::string_view
expectedMarker(RequestType type)
{
    switch (type) {
      case RequestType::Login:
        return "Welcome back";
      case RequestType::AccountSummary:
        return "Account Summary";
      case RequestType::AddPayee:
        return "Add a Payee";
      case RequestType::BillPay:
        return "Pay a Bill";
      case RequestType::BillPayStatusOutput:
        return "Bill Payment Status";
      case RequestType::ChangeProfile:
        return "Update Your Profile";
      case RequestType::CheckDetailHtml:
        return "Check Detail";
      case RequestType::OrderCheck:
        return "Order Checks";
      case RequestType::PlaceCheckOrder:
        return "check order has been placed";
      case RequestType::PostPayee:
        return "Payee added";
      case RequestType::PostTransfer:
        return "Transfer complete";
      case RequestType::Profile:
        return "Your Profile";
      case RequestType::Transfer:
        return "Transfer Funds";
      case RequestType::Logout:
        return "You have signed off";
    }
    return "";
}

} // namespace

WorkloadGenerator::WorkloadGenerator(const backend::BankDb &db, uint64_t seed)
    : db_(db), rng_(seed), checkTxIds_(db.checkTransactionIds())
{
    double total = 0.0;
    for (size_t i = 0; i < kNumRequestTypes; ++i)
        total += typeTable()[i].mixPercent;
    double acc = 0.0;
    for (size_t i = 0; i < kNumRequestTypes; ++i) {
        acc += typeTable()[i].mixPercent / total;
        cumulative_[i] = acc;
    }
    cumulative_[kNumRequestTypes - 1] = 1.0;
}

RequestType
WorkloadGenerator::sampleType()
{
    const double u = rng_.nextDouble();
    for (size_t i = 0; i < kNumRequestTypes; ++i) {
        if (u <= cumulative_[i])
            return static_cast<RequestType>(i);
    }
    return RequestType::Logout;
}

uint64_t
WorkloadGenerator::sampleUser()
{
    return 1 + rng_.nextBounded(db_.numUsers());
}

GeneratedRequest
WorkloadGenerator::generate(RequestType type, uint64_t user_id,
                            uint64_t session_id)
{
    RHYTHM_ASSERT(db_.validUser(user_id), "generator given invalid user");
    GeneratedRequest out;
    out.type = type;
    out.userId = user_id;
    out.sessionId = type == RequestType::Login ? 0 : session_id;

    const std::string cookie =
        out.sessionId == 0 ? std::string()
                           : "session=" + std::to_string(out.sessionId);
    const RequestTypeInfo &info = typeInfo(type);
    using Params = std::vector<std::pair<std::string, std::string>>;
    Params params;
    http::Method method = http::Method::Get;

    switch (type) {
      case RequestType::Login:
        method = http::Method::Post;
        params = {{"userid", std::to_string(user_id)},
                  {"password", "pwd" + std::to_string(user_id)}};
        break;
      case RequestType::CheckDetailHtml: {
        uint64_t tx = 0;
        if (!checkTxIds_.empty())
            tx = checkTxIds_[rng_.nextBounded(checkTxIds_.size())];
        params = {{"tx", std::to_string(tx)}};
        break;
      }
      case RequestType::BillPayStatusOutput: {
        // 30% of status requests execute a payment (form target); the
        // rest list history.
        if (rng_.nextBool(0.3)) {
            auto payees = db_.payees(user_id);
            if (!payees.empty()) {
                method = http::Method::Post;
                params = {{"payee",
                           std::to_string(
                               payees[rng_.nextBounded(payees.size())]
                                   ->payeeId)},
                          {"amount",
                           std::to_string(rng_.nextRange(100, 5000))}};
            }
        }
        break;
      }
      case RequestType::PlaceCheckOrder:
        method = http::Method::Post;
        params = {{"style", std::to_string(rng_.nextRange(1, 4))},
                  {"quantity",
                   std::to_string(50u << rng_.nextBounded(3))}};
        break;
      case RequestType::PostPayee:
        method = http::Method::Post;
        params = {{"name",
                   "Utility Company " +
                       std::to_string(rng_.nextBounded(10000))},
                  {"address",
                   std::to_string(1 + rng_.nextBounded(9999)) +
                       " Industry Blvd"},
                  {"account",
                   std::to_string(100000000 + rng_.nextBounded(899999999))}};
        break;
      case RequestType::PostTransfer: {
        method = http::Method::Post;
        const bool from_checking = rng_.nextBool(0.5);
        const uint64_t from = from_checking
                                  ? backend::BankDb::checkingId(user_id)
                                  : backend::BankDb::savingsId(user_id);
        const uint64_t to = from_checking
                                ? backend::BankDb::savingsId(user_id)
                                : backend::BankDb::checkingId(user_id);
        params = {{"from", std::to_string(from)},
                  {"to", std::to_string(to)},
                  {"amount", std::to_string(rng_.nextRange(1, 1000))}};
        break;
      }
      default:
        break; // session-only pages need no parameters
    }

    out.raw = http::buildRequest(method, info.path, params, cookie);
    return out;
}

GeneratedRequest
WorkloadGenerator::next(uint64_t session_id)
{
    return generate(sampleType(), sampleUser(), session_id);
}

ValidationResult
validateResponse(RequestType type, std::string_view raw)
{
    ValidationResult res;
    if (!startsWith(raw, "HTTP/1.1 200 OK\r\n")) {
        res.reason = "bad status line";
        return res;
    }
    const size_t header_end = raw.find("\r\n\r\n");
    if (header_end == std::string_view::npos) {
        res.reason = "no header terminator";
        return res;
    }
    const size_t body_size = raw.size() - header_end - 4;

    // Locate and check Content-Length; the device writer pads the value
    // with trailing whitespace, which HTTP permits.
    const size_t cl_pos = raw.find("Content-Length: ");
    if (cl_pos == std::string_view::npos || cl_pos > header_end) {
        res.reason = "missing Content-Length";
        return res;
    }
    size_t p = cl_pos + 16;
    uint64_t declared = 0;
    bool digits = false;
    while (p < raw.size() && raw[p] >= '0' && raw[p] <= '9') {
        declared = declared * 10 + static_cast<uint64_t>(raw[p] - '0');
        digits = true;
        ++p;
    }
    if (!digits) {
        res.reason = "unparsable Content-Length";
        return res;
    }
    while (p < raw.size() && raw[p] == ' ')
        ++p;
    if (p + 1 >= raw.size() || raw[p] != '\r' || raw[p + 1] != '\n') {
        res.reason = "Content-Length not whitespace-terminated";
        return res;
    }
    if (declared != body_size) {
        res.reason = "Content-Length mismatch: declared " +
                     std::to_string(declared) + " actual " +
                     std::to_string(body_size);
        return res;
    }

    const std::string_view body = raw.substr(header_end + 4);
    if (body.find("<!-- page:ok -->") == std::string_view::npos) {
        res.reason = "missing completion marker";
        return res;
    }
    if (body.find(expectedMarker(type)) == std::string_view::npos) {
        res.reason = "missing type marker: " +
                     std::string(expectedMarker(type));
        return res;
    }
    if (type == RequestType::Login &&
        raw.substr(0, header_end).find("Set-Cookie: session=") ==
            std::string_view::npos) {
        res.reason = "login response missing session cookie";
        return res;
    }
    res.ok = true;
    return res;
}

uint64_t
extractSessionId(std::string_view response)
{
    const size_t pos = response.find("Set-Cookie: session=");
    if (pos == std::string_view::npos)
        return 0;
    size_t p = pos + 20;
    uint64_t sid = 0;
    while (p < response.size() && response[p] >= '0' && response[p] <= '9') {
        sid = sid * 10 + static_cast<uint64_t>(response[p] - '0');
        ++p;
    }
    return sid;
}

} // namespace rhythm::specweb
