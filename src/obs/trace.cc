#include "obs/trace.hh"

#include <algorithm>
#include <numeric>

namespace rhythm::obs {
namespace {

/** Chrome trace timestamps are microseconds; DES time is picoseconds. */
double
toTraceUs(des::Time t)
{
    return des::toMicros(t);
}

void
writeArgs(JsonWriter &w, const std::vector<TraceArg> &args)
{
    if (args.empty())
        return;
    w.key("args");
    w.beginObject();
    for (const TraceArg &a : args) {
        w.key(a.key);
        if (a.isString)
            w.value(std::string_view(a.str));
        else
            w.value(a.num);
    }
    w.endObject();
}

} // namespace

void
Tracer::setTrackName(uint32_t track, std::string_view name)
{
    trackNames_.emplace(track, std::string(name));
}

void
Tracer::setProcessName(uint32_t pid, std::string_view name)
{
    processNames_.emplace(pid, std::string(name));
}

void
Tracer::begin(uint32_t track, std::string name, const char *category,
              des::Time now, std::vector<TraceArg> args)
{
    events_.push_back(TraceEvent{track, TraceEvent::Phase::Begin,
                                 std::move(name), category, now, 0,
                                 std::move(args)});
    ++openSpans_[track];
}

void
Tracer::end(uint32_t track, des::Time now)
{
    auto it = openSpans_.find(track);
    if (it == openSpans_.end() || it->second == 0)
        return; // unbalanced end: drop
    --it->second;
    events_.push_back(TraceEvent{track, TraceEvent::Phase::End, "", "",
                                 now, 0, {}});
}

void
Tracer::complete(uint32_t track, std::string name, const char *category,
                 des::Time start, des::Time end,
                 std::vector<TraceArg> args)
{
    events_.push_back(TraceEvent{track, TraceEvent::Phase::Complete,
                                 std::move(name), category, start,
                                 end >= start ? end - start : 0,
                                 std::move(args)});
}

void
Tracer::instant(uint32_t track, std::string name, const char *category,
                des::Time now, std::vector<TraceArg> args)
{
    events_.push_back(TraceEvent{track, TraceEvent::Phase::Instant,
                                 std::move(name), category, now, 0,
                                 std::move(args)});
}

size_t
Tracer::openSpans(uint32_t track) const
{
    auto it = openSpans_.find(track);
    return it == openSpans_.end() ? 0 : it->second;
}

void
Tracer::clear()
{
    events_.clear();
    openSpans_.clear();
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    // Stable sort by timestamp: complete events are recorded at their
    // *end* time, so recording order is not timestamp order; viewers
    // want sorted input. Stability preserves begin/end pairing at
    // identical instants.
    std::vector<size_t> order(events_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](size_t a, size_t b) {
                         return events_[a].ts < events_[b].ts;
                     });

    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",\n";
        first = false;
    };

    sep();
    out << "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, "
           "\"name\": \"process_name\", "
           "\"args\": {\"name\": \"rhythm\"}}";
    std::string escaped;
    for (const auto &[pid, name] : processNames_) {
        if (pid == 0)
            continue; // pid 0 is always "rhythm", emitted above
        sep();
        escaped.clear();
        jsonEscapeTo(name, escaped);
        out << "{\"ph\": \"M\", \"pid\": " << pid
            << ", \"tid\": 0, \"name\": \"process_name\", "
               "\"args\": {\"name\": \""
            << escaped << "\"}}";
    }
    for (const auto &[track, name] : trackNames_) {
        sep();
        escaped.clear();
        jsonEscapeTo(name, escaped);
        out << "{\"ph\": \"M\", \"pid\": " << track / kTrackPidStride
            << ", \"tid\": " << track % kTrackPidStride
            << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
            << escaped << "\"}}";
    }

    // One writer for every event: after the top-level endObject its
    // level stack is empty again, so the next beginObject starts a
    // fresh document — byte-identical to a per-event writer, without
    // re-allocating the stack and scratch buffers per event.
    JsonWriter ew(out, 0);
    for (size_t idx : order) {
        const TraceEvent &e = events_[idx];
        sep();
        ew.beginObject();
        const char phase = static_cast<char>(e.phase);
        ew.key("ph");
        ew.value(std::string_view(&phase, 1));
        ew.key("pid");
        ew.value(static_cast<uint64_t>(e.track / kTrackPidStride));
        ew.key("tid");
        ew.value(static_cast<uint64_t>(e.track % kTrackPidStride));
        ew.key("ts");
        ew.value(toTraceUs(e.ts));
        if (e.phase == TraceEvent::Phase::Complete) {
            ew.key("dur");
            ew.value(toTraceUs(e.dur));
        }
        if (e.phase != TraceEvent::Phase::End) {
            ew.key("name");
            ew.value(std::string_view(e.name));
            if (e.category[0] != '\0') {
                ew.key("cat");
                ew.value(std::string_view(e.category));
            }
        }
        if (e.phase == TraceEvent::Phase::Instant) {
            ew.key("s");
            ew.value("t"); // thread-scoped instant
        }
        writeArgs(ew, e.args);
        ew.endObject();
    }
    out << "\n]}\n";
}

} // namespace rhythm::obs
