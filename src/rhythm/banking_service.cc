#include "rhythm/banking_service.hh"

#include <memory>

#include "backend/protocol.hh"
#include "backend/recovery.hh"
#include "rhythm/session_array.hh"
#include "specweb/quickpay.hh"

namespace rhythm::core {

bool
BankingService::resolveType(const http::Request &request,
                            uint32_t &type_id) const
{
    specweb::RequestType type;
    if (!specweb::typeFromPath(request.path, type))
        return false;
    type_id = static_cast<uint32_t>(specweb::typeIndex(type));
    return true;
}

void
BankingService::runStage(uint32_t type_id, int stage,
                         specweb::HandlerContext &ctx) const
{
    app_.runStage(static_cast<specweb::RequestType>(type_id), stage, ctx);
}

bool
BankingService::stageIsLaneParallel(uint32_t type_id, int stage) const
{
    // Audit (see DESIGN.md 6f): every banking stage either only reads
    // shared state (SessionArray::lookup, BankDb reads via composed
    // backend requests) or runs purely on per-lane data — except the
    // two below, which mutate the shared session store / consume its
    // RNG and must keep cohort lane order:
    //  - Login stage 1 calls SessionProvider::create (RNG + bucket
    //    insert). Stages 0 and 2 of Login never touch sessions.
    //  - Logout's single stage calls SessionProvider::destroy.
    const auto type = static_cast<specweb::RequestType>(type_id);
    if (type == specweb::RequestType::Login)
        return stage != 1;
    if (type == specweb::RequestType::Logout)
        return false;
    return true;
}

std::string
BankingService::executeBackend(std::string_view request,
                               simt::TraceRecorder &rec)
{
    return backend_.execute(request, rec);
}

std::string
BankingService::executeBackend(std::string_view request, uint64_t token,
                               simt::TraceRecorder &rec)
{
    if (recovery_)
        return recovery_->execute(request, token, rec);
    return backend_.execute(request, rec);
}

void
attachSessionRecovery(backend::RecoverableBackend &recovery,
                      SessionArray &sessions)
{
    sessions.setMutationHook(
        [&recovery](bool created, uint64_t sid, uint64_t user) {
            if (created)
                recovery.journalSessionCreate(sid, user);
            else
                recovery.journalSessionDestroy(sid);
        });

    backend::SessionHooks hooks;
    // The captured snapshot lives in the closures; checkpoint()
    // overwrites it, restore() reinstates it.
    auto snap =
        std::make_shared<SessionArray::Snapshot>(sessions.snapshot());
    hooks.checkpoint = [&sessions, snap]() { *snap = sessions.snapshot(); };
    hooks.restore = [&sessions, snap]() { sessions.restore(*snap); };
    // Replay re-executes create() against the restored array + RNG
    // state, which deterministically reproduces the original probe
    // sequence — and therefore the original session id, which the
    // recovery layer asserts against the journaled one.
    hooks.replayCreate = [&sessions](uint64_t user) -> uint64_t {
        simt::NullTracer null;
        return sessions.create(user, null);
    };
    hooks.replayDestroy = [&sessions](uint64_t sid) -> bool {
        simt::NullTracer null;
        return sessions.destroy(sid, null);
    };
    recovery.setSessionHooks(std::move(hooks));
}

uint32_t
BankingService::backendRequestSlotBytes() const
{
    return backend::kRequestSlotBytes;
}

uint32_t
BankingService::backendResponseSlotBytes() const
{
    return backend::kResponseSlotBytes;
}

std::optional<std::string>
BankingService::serveFallback(const http::Request &request,
                              specweb::SessionProvider &sessions,
                              simt::TraceRecorder &rec)
{
    if (request.path != specweb::kQuickPayPath)
        return std::nullopt;
    return specweb::serveQuickPay(request, backend_, sessions, rec);
}

} // namespace rhythm::core
