file(REMOVE_RECURSE
  "CMakeFiles/rhythm_core_test.dir/rhythm_core_test.cc.o"
  "CMakeFiles/rhythm_core_test.dir/rhythm_core_test.cc.o.d"
  "rhythm_core_test"
  "rhythm_core_test.pdb"
  "rhythm_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
