/**
 * @file
 * Unit and property tests for the HTTP message types and parser.
 */

#include <gtest/gtest.h>

#include "http/http.hh"
#include "http/parser.hh"
#include "simt/trace.hh"
#include "util/rng.hh"

namespace rhythm::http {
namespace {

simt::NullTracer gNull;

Request
mustParse(const std::string &raw)
{
    Request req;
    EXPECT_TRUE(parseRequest(raw, 0, gNull, req)) << raw;
    return req;
}

TEST(Parser, SimpleGet)
{
    Request req = mustParse(
        "GET /bank/account.php HTTP/1.1\r\nHost: bank.example.com\r\n\r\n");
    EXPECT_EQ(req.method, Method::Get);
    EXPECT_EQ(req.path, "/bank/account.php");
    EXPECT_TRUE(req.params.empty());
    EXPECT_TRUE(req.keepAlive);
    EXPECT_EQ(req.sessionId, 0u);
}

TEST(Parser, GetWithQueryString)
{
    Request req = mustParse(
        "GET /bank/tx.php?acct=101&max=20 HTTP/1.1\r\nHost: h\r\n\r\n");
    EXPECT_EQ(req.path, "/bank/tx.php");
    ASSERT_EQ(req.params.size(), 2u);
    EXPECT_EQ(req.param("acct"), "101");
    EXPECT_EQ(req.param("max"), "20");
    EXPECT_TRUE(req.hasParam("acct"));
    EXPECT_FALSE(req.hasParam("missing"));
    EXPECT_EQ(req.param("missing"), "");
}

TEST(Parser, PostFormBody)
{
    const std::string raw =
        "POST /bank/login.php HTTP/1.1\r\nHost: h\r\n"
        "Content-Type: application/x-www-form-urlencoded\r\n"
        "Content-Length: 25\r\n\r\nuserid=42&password=pwd42x";
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Post);
    EXPECT_EQ(req.contentLength, 25u);
    EXPECT_EQ(req.param("userid"), "42");
    EXPECT_EQ(req.param("password"), "pwd42x");
}

TEST(Parser, SessionCookieExtracted)
{
    Request req = mustParse(
        "GET /bank/summary.php HTTP/1.1\r\nHost: h\r\n"
        "Cookie: lang=en; session=987654321\r\n\r\n");
    EXPECT_EQ(req.sessionId, 987654321u);
    EXPECT_EQ(req.cookie, "lang=en; session=987654321");
}

TEST(Parser, ConnectionClose)
{
    Request req = mustParse(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(req.keepAlive);
}

TEST(Parser, Http10DefaultsToClose)
{
    Request req = mustParse("GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(req.keepAlive);
}

TEST(Parser, UrlDecoding)
{
    Request req = mustParse(
        "GET /p.php?name=John+Smith&sym=%26%3D HTTP/1.1\r\n\r\n");
    EXPECT_EQ(req.param("name"), "John Smith");
    EXPECT_EQ(req.param("sym"), "&=");
}

TEST(Parser, RejectsMalformed)
{
    Request req;
    EXPECT_FALSE(parseRequest("", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("PUT / HTTP/1.1\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET / HTTP/2.0\r\n\r\n", 0, gNull, req));
    EXPECT_FALSE(parseRequest("GET / HTTP/1.1\r\nno-end", 0, gNull, req));
    EXPECT_FALSE(parseRequest(
        "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 0, gNull,
        req));
    EXPECT_FALSE(parseRequest(
        "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 0, gNull, req));
}

TEST(Parser, RecordsTraceBlocks)
{
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    Request req;
    ASSERT_TRUE(parseRequest(
        "GET /bank/summary.php?a=1 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=5\r\n\r\n",
        0x10000, rec, req));
    EXPECT_GT(trace.blocks.size(), 3u);
    EXPECT_GT(trace.totalInstructions(), 100u);
    // All loads hit the request buffer region.
    for (const auto &op : trace.memOps) {
        EXPECT_GE(op.addr, 0x10000u);
        EXPECT_FALSE(op.isStore);
    }
    // Final block is the success terminator.
    EXPECT_EQ(trace.blocks.back().blockId, kBlockParseDone);
}

TEST(Parser, IdenticalRequestsYieldIdenticalBlockSequences)
{
    // The similarity property Rhythm exploits: two requests of the same
    // type (different values, same shape) produce the same control path.
    auto traceOf = [](const std::string &raw) {
        simt::ThreadTrace t;
        simt::RecordingTracer rec(t);
        Request req;
        EXPECT_TRUE(parseRequest(raw, 0, rec, req));
        return t;
    };
    auto a = traceOf(
        "GET /bank/tx.php?acct=101&max=20 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=11\r\n\r\n");
    auto b = traceOf(
        "GET /bank/tx.php?acct=992&max=50 HTTP/1.1\r\nHost: h\r\n"
        "Cookie: session=99\r\n\r\n");
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i)
        EXPECT_EQ(a.blocks[i].blockId, b.blocks[i].blockId) << i;
}

TEST(RoundTrip, BuildThenParseGet)
{
    const std::string raw = buildRequest(
        Method::Get, "/bank/bill_pay.php",
        {{"payee", "17"}, {"amount", "2500"}}, "session=31");
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Get);
    EXPECT_EQ(req.path, "/bank/bill_pay.php");
    EXPECT_EQ(req.param("payee"), "17");
    EXPECT_EQ(req.param("amount"), "2500");
    EXPECT_EQ(req.sessionId, 31u);
}

TEST(RoundTrip, BuildThenParsePost)
{
    const std::string raw = buildRequest(
        Method::Post, "/bank/login.php",
        {{"userid", "7"}, {"password", "pwd7"}});
    Request req = mustParse(raw);
    EXPECT_EQ(req.method, Method::Post);
    EXPECT_EQ(req.param("userid"), "7");
    EXPECT_EQ(req.param("password"), "pwd7");
}

class RoundTripProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoundTripProperty, RandomParamsSurvive)
{
    Rng rng(GetParam());
    std::vector<std::pair<std::string, std::string>> params;
    const int n = static_cast<int>(rng.nextRange(0, 6));
    for (int i = 0; i < n; ++i) {
        params.emplace_back("k" + std::to_string(i),
                            std::to_string(rng.nextBounded(1000000)));
    }
    const Method method = rng.nextBool(0.5) ? Method::Get : Method::Post;
    const std::string cookie =
        rng.nextBool(0.5) ? "session=" + std::to_string(rng.nextBounded(1u << 30))
                          : "";
    const std::string raw =
        buildRequest(method, "/bank/x.php", params, cookie);
    Request req;
    ASSERT_TRUE(parseRequest(raw, 0, gNull, req));
    EXPECT_EQ(req.method, method);
    ASSERT_EQ(req.params.size(), params.size());
    for (const auto &[k, v] : params)
        EXPECT_EQ(req.param(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<uint64_t>(1, 25));

TEST(Response, SerializeContainsCorrectContentLength)
{
    ResponseBuilder rb(Status::Ok);
    rb.addHeader("Content-Type", "text/html");
    rb.append("<html>hello</html>");
    const std::string out = rb.serialize();
    EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Type: text/html\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Length: 18\r\n"), std::string::npos);
    EXPECT_NE(out.find("\r\n\r\n<html>hello</html>"), std::string::npos);
}

TEST(Response, StatusReasons)
{
    EXPECT_EQ(statusReason(Status::Ok), "OK");
    EXPECT_EQ(statusReason(Status::NotFound), "Not Found");
    EXPECT_EQ(statusReason(Status::Found), "Found");
    EXPECT_EQ(statusReason(Status::BadRequest), "Bad Request");
    EXPECT_EQ(statusReason(Status::InternalError), "Internal Server Error");
}

TEST(Response, BodyAccumulates)
{
    ResponseBuilder rb;
    rb.append("a");
    rb.append("bc");
    EXPECT_EQ(rb.bodySize(), 3u);
    EXPECT_EQ(rb.body(), "abc");
}

} // namespace
} // namespace rhythm::http
