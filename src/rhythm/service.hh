/**
 * @file
 * The service interface: what a web application must provide to run on
 * the Rhythm pipeline.
 *
 * Rhythm itself is workload-agnostic (the paper deploys SPECWeb Banking
 * and names Search, Email and Chat as future services, Section 8). A
 * Service maps parsed requests to cohort types, decomposes each type
 * into backend-separated process stages, and executes its own backend.
 * The pipeline handles everything else: cohort formation, kernels,
 * buffers, transposes, copies and responses.
 */

#ifndef RHYTHM_RHYTHM_SERVICE_HH
#define RHYTHM_RHYTHM_SERVICE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "http/http.hh"
#include "simt/trace.hh"
#include "specweb/context.hh"

namespace rhythm::core {

/** A cohort-servable web application. */
class Service
{
  public:
    virtual ~Service() = default;

    /** Number of cohort types; type ids are [0, numTypes()). */
    virtual uint32_t numTypes() const = 0;

    /**
     * Resolves a parsed request to its cohort type.
     * @return false when the request is not served by this service
     *         (the pipeline responds 404).
     */
    virtual bool resolveType(const http::Request &request,
                             uint32_t &type_id) const = 0;

    /** Human-readable type name (kernels and stats are labelled). */
    virtual std::string_view typeName(uint32_t type_id) const = 0;

    /** Process stages for a type (backend round trips + 1). */
    virtual int numStages(uint32_t type_id) const = 0;

    /** Response buffer bytes per request of this type (power of two). */
    virtual uint32_t responseBufferBytes(uint32_t type_id) const = 0;

    /**
     * Runs one process stage (see specweb::HandlerContext for the
     * stage protocol).
     */
    virtual void runStage(uint32_t type_id, int stage,
                          specweb::HandlerContext &ctx) const = 0;

    /**
     * Whether runStage(type_id, stage) may execute concurrently for
     * distinct lanes of one cohort (the pipeline then fans the stage
     * out over the sim pool and merges in canonical lane order).
     *
     * A stage qualifies only if, for lanes of the same cohort, its
     * execution is pure with respect to shared state: it may read
     * shared structures that no lane of the stage mutates (e.g. session
     * lookup) but must not write them, consume shared RNG streams, or
     * otherwise make one lane's output depend on another lane's
     * execution order. Stages that mutate shared state (session
     * create/destroy) must return false and run serially. Defaults to
     * false: services opt stages in after auditing them.
     */
    virtual bool
    stageIsLaneParallel(uint32_t type_id, int stage) const
    {
        (void)type_id;
        (void)stage;
        return false;
    }

    /** Executes one wire-format backend request. */
    virtual std::string executeBackend(std::string_view request,
                                       simt::TraceRecorder &rec) = 0;

    /**
     * Token-carrying variant: @p token is the pipeline's idempotency
     * token for this logical backend call — stable across retries and
     * watchdog-hedged re-executions of the same cohort, unique across
     * logical calls. Services with a recovery/idempotency layer key
     * their exactly-once filter on it; the default ignores it.
     */
    virtual std::string executeBackend(std::string_view request,
                                       uint64_t token,
                                       simt::TraceRecorder &rec)
    {
        (void)token;
        return executeBackend(request, rec);
    }

    /**
     * True when repeated executeBackend calls carrying one token apply
     * the operation exactly once (an idempotency layer is attached).
     * The pipeline's watchdog only replays a hedged cohort's backend
     * calls when this holds — without the filter a replayed mutation
     * would apply twice.
     */
    virtual bool backendExactlyOnce() const { return false; }

    /** Wire slot bytes reserved per backend request. */
    virtual uint32_t backendRequestSlotBytes() const { return 1024; }

    /** Wire slot bytes reserved per backend response. */
    virtual uint32_t backendResponseSlotBytes() const { return 4096; }

    /**
     * Serves a request that does not fit the data-parallel model on
     * the host (Section 3.1 dispatch).
     * @param sessions The pipeline's session store.
     * @return The complete response, or nullopt when the path is not a
     *         host-fallback route.
     */
    virtual std::optional<std::string>
    serveFallback(const http::Request &request,
                  specweb::SessionProvider &sessions,
                  simt::TraceRecorder &rec)
    {
        (void)request;
        (void)sessions;
        (void)rec;
        return std::nullopt;
    }
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_SERVICE_HH
