file(REMOVE_RECURSE
  "CMakeFiles/search_server.dir/search_server.cc.o"
  "CMakeFiles/search_server.dir/search_server.cc.o.d"
  "search_server"
  "search_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
