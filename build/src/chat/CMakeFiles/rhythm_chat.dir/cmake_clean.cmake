file(REMOVE_RECURSE
  "CMakeFiles/rhythm_chat.dir/service.cc.o"
  "CMakeFiles/rhythm_chat.dir/service.cc.o.d"
  "CMakeFiles/rhythm_chat.dir/store.cc.o"
  "CMakeFiles/rhythm_chat.dir/store.cc.o.d"
  "librhythm_chat.a"
  "librhythm_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
