file(REMOVE_RECURSE
  "CMakeFiles/rhythm_platform.dir/cpu.cc.o"
  "CMakeFiles/rhythm_platform.dir/cpu.cc.o.d"
  "CMakeFiles/rhythm_platform.dir/measure.cc.o"
  "CMakeFiles/rhythm_platform.dir/measure.cc.o.d"
  "CMakeFiles/rhythm_platform.dir/titan.cc.o"
  "CMakeFiles/rhythm_platform.dir/titan.cc.o.d"
  "librhythm_platform.a"
  "librhythm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
