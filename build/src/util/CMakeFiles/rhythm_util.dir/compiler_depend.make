# Empty compiler generated dependencies file for rhythm_util.
# This may be replaced when dependencies are built.
