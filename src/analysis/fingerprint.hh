/**
 * @file
 * Online per-type control-flow fingerprints (DESIGN.md §6j).
 *
 * The offline Figure 2 analysis (similarity.hh) asks "how much control
 * flow do requests of a type share?" once, over captured traces. The
 * scheduler needs the same answer *online* — cheap enough to consult on
 * every dispatch — to decide whether two partially-filled cohorts of
 * different request types can share tail warps profitably instead of
 * each padding to the warp width.
 *
 * FingerprintTracker keeps one EWMA of the Figure 2 normalized-speedup
 * metric per request type (self similarity, fed from every completed
 * launch's stage-0 traces) and one per observed type pair (cross
 * similarity, fed from fused launches). Updates use the block-schedule
 * merge fast path (simt::mergeBlockSchedule) over a small canonical
 * lane sample and are additionally memoized on the sample's block
 * content, so steady-state traffic — which cycles through a bounded
 * session pool — hits the memo instead of re-merging. Queries are O(1)
 * array reads.
 *
 * Everything here is a pure function of the observed traces (no clocks,
 * no randomness); given the same launch sequence the tracker state is
 * identical at any --sim-threads, which the fusion determinism contract
 * relies on.
 */

#ifndef RHYTHM_ANALYSIS_FINGERPRINT_HH
#define RHYTHM_ANALYSIS_FINGERPRINT_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "simt/trace.hh"
#include "util/stats.hh"

namespace rhythm::analysis {

/** Tuning knobs for the online fingerprint. */
struct FingerprintConfig
{
    /** EWMA smoothing factor for similarity updates, in (0, 1]. */
    double alpha = 0.25;
    /** Lanes sampled per observation (canonical prefix of the launch). */
    uint32_t sampleLanes = 32;
    /** Capacity of the block-content memo (cleared when full). */
    size_t memoEntries = 256;
};

/** Online per-type (and per-pair) control-flow similarity tracker. */
class FingerprintTracker
{
  public:
    /**
     * @param num_types Size of the type-id space (ids in [0, num_types)).
     * @param config Tuning knobs.
     */
    explicit FingerprintTracker(uint32_t num_types,
                                const FingerprintConfig &config = {});

    /**
     * Feeds one completed same-type launch: merges a canonical sample
     * of @p lanes (first sampleLanes non-null traces) with the
     * block-schedule fast path and folds the normalized speedup into
     * the type's self-similarity EWMA.
     */
    void observeLaunch(uint32_t type,
                       std::span<const simt::ThreadTrace *const> lanes);

    /**
     * Feeds one fused launch's measured cross-type merge: samples both
     * types' lanes, merges them together, and folds the normalized
     * speedup into the (a, b) pair EWMA (symmetric).
     */
    void observePair(uint32_t a,
                     std::span<const simt::ThreadTrace *const> a_lanes,
                     uint32_t b,
                     std::span<const simt::ThreadTrace *const> b_lanes);

    /** Self-similarity EWMA of @p type; 1.0 until first observation. */
    double typeSimilarity(uint32_t type) const;

    /**
     * Predicted merge compatibility of two types, O(1): the measured
     * pair EWMA when a fused launch has been observed, else the more
     * pessimistic of the two self similarities, else 1.0 (optimistic
     * bootstrap — the first fused launch measures the real value).
     */
    double pairSimilarity(uint32_t a, uint32_t b) const;

    /** Launch observations folded in (self + pair). */
    uint64_t observations() const { return observations_; }

    /** Observations served from the block-content memo. */
    uint64_t memoHits() const { return memoHits_; }

  private:
    /** Normalized speedup of a canonical sample, memoized on content. */
    double sampledSimilarity(
        std::span<const simt::ThreadTrace *const> lanes,
        std::span<const simt::ThreadTrace *const> extra_lanes);

    uint32_t numTypes_;
    FingerprintConfig config_;
    std::vector<Ewma> self_;
    std::vector<Ewma> pair_; //!< numTypes × numTypes, symmetric.
    std::unordered_map<uint64_t, double> memo_;
    uint64_t observations_ = 0;
    uint64_t memoHits_ = 0;
};

} // namespace rhythm::analysis

#endif // RHYTHM_ANALYSIS_FINGERPRINT_HH
