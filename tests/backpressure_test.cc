/**
 * @file
 * Structural-hazard and backpressure tests for the Rhythm pipeline:
 * reader double-buffer stalls, cohort-pool exhaustion, dispatch
 * queueing, and the transposeRegionLoads helper.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/buffers.hh"
#include "rhythm/server.hh"
#include "simt/warp.hh"
#include "specweb/workload.hh"

namespace rhythm::core {
namespace {

simt::NullTracer gNull;

struct Rig
{
    explicit Rig(RhythmConfig cfg)
        : db(300, 13), device(queue, simt::DeviceConfig{}),
          service(db), server(queue, device, service, cfg), gen(db, 31)
    {
        server.setResponseCallback([this](uint64_t, std::string_view,
                                          des::Time) { ++completed; });
    }

    std::string
    request(specweb::RequestType type, uint64_t user)
    {
        const uint64_t sid = type == specweb::RequestType::Login
                                 ? 0
                                 : server.sessions().create(user, gNull);
        return gen.generate(type, user, sid).raw;
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    BankingService service;
    RhythmServer server;
    specweb::WorkloadGenerator gen;
    int completed = 0;
};

RhythmConfig
tinyConfig()
{
    RhythmConfig cfg;
    cfg.cohortSize = 8;
    cfg.cohortContexts = 2;
    cfg.cohortTimeout = des::kMillisecond;
    cfg.backendOnDevice = true;
    cfg.networkOverPcie = false;
    return cfg;
}

TEST(Backpressure, ReaderStallsWhenBothBuffersFull)
{
    Rig rig(tinyConfig());
    // Without running the event loop, the parser cannot complete: after
    // one batch is in the parser and the forming buffer fills, further
    // injections are refused (the reader's double-buffer stall).
    int accepted = 0;
    for (int i = 0; i < 64; ++i) {
        if (rig.server.injectRequest(
                rig.request(specweb::RequestType::Transfer,
                            1 + static_cast<uint64_t>(i)),
                static_cast<uint64_t>(i)))
            ++accepted;
    }
    EXPECT_LT(accepted, 64);
    EXPECT_GE(accepted, 16); // two buffers' worth at least
    // Draining the event loop frees the reader again.
    rig.queue.run();
    EXPECT_TRUE(rig.server.injectRequest(
        rig.request(specweb::RequestType::Transfer, 100), 999));
    rig.server.flush();
    rig.queue.run();
    EXPECT_EQ(rig.completed, accepted + 1);
    EXPECT_TRUE(rig.server.drained());
}

TEST(Backpressure, PoolExhaustionQueuesDispatchButCompletes)
{
    // Three request types with only two cohort contexts: the third
    // type's requests wait in the dispatch queue until a context frees,
    // but everything completes.
    Rig rig(tinyConfig());
    std::vector<std::string> raws;
    for (int i = 0; i < 8; ++i) {
        const uint64_t u = 1 + static_cast<uint64_t>(i);
        raws.push_back(rig.request(specweb::RequestType::Transfer, u));
        raws.push_back(
            rig.request(specweb::RequestType::AccountSummary, u));
        raws.push_back(rig.request(specweb::RequestType::BillPay, u));
    }
    uint64_t id = 0;
    for (const std::string &raw : raws) {
        while (!rig.server.injectRequest(raw, id))
            rig.queue.run();
        ++id;
    }
    rig.server.flush();
    rig.queue.run();
    // flush() may leave late-queued dispatch entries in fresh partial
    // cohorts; the timeout launches them.
    rig.queue.run();
    EXPECT_EQ(rig.completed, 24);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.server.stats().responsesCompleted, 24u);
}

TEST(Backpressure, HeavyOverloadDrainsEventually)
{
    RhythmConfig cfg = tinyConfig();
    cfg.cohortContexts = 3;
    // One fresh session per request: size the array for all of them.
    cfg.sessionNodesPerBucket = 128;
    Rig rig(cfg);
    uint64_t id = 0;
    for (int round = 0; round < 16; ++round) {
        for (int i = 0; i < 24; ++i) {
            const std::string raw = rig.request(
                static_cast<specweb::RequestType>(i % 3 + 1),
                1 + static_cast<uint64_t>(i));
            while (!rig.server.injectRequest(raw, id))
                rig.queue.run();
            ++id;
        }
    }
    rig.server.flush();
    rig.queue.run();
    rig.queue.run();
    EXPECT_EQ(rig.server.stats().responsesCompleted, id);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.server.stats().errorResponses, 0u);
}

TEST(TransposeRegionLoads, RewritesOnlySlotLoads)
{
    simt::ThreadTrace trace;
    simt::RecordingTracer rec(trace);
    rec.block(1, 10);
    rec.load(0x9000'0000 + 2 * 1024 + 64, 4, 4, 4); // lane 2's slot
    rec.load(0x5000'0000, 4, 4, 4);                 // unrelated region
    rec.store(0x9000'0000 + 2 * 1024 + 8, 1, 0, 4); // store: untouched

    transposeRegionLoads(trace, 0x9000'0000, 2, 1024, 32);

    // Slot load rewritten to column-major: element 16 (byte 64) of lane
    // 2 in a 32-lane region = base + 16*32*4 + 2*4.
    EXPECT_EQ(trace.memOps[0].addr, 0x9000'0000u + 16 * 32 * 4 + 2 * 4);
    EXPECT_EQ(trace.memOps[0].stride, 32u * 4);
    // Others untouched.
    EXPECT_EQ(trace.memOps[1].addr, 0x5000'0000u);
    EXPECT_EQ(trace.memOps[1].stride, 4u);
    EXPECT_EQ(trace.memOps[2].addr, 0x9000'0000u + 2 * 1024 + 8);
}

TEST(TransposeRegionLoads, MakesWarpLoadsCoalesce)
{
    // 32 lanes each load the same offsets of their row-major slots:
    // uncoalesced before rewriting, fully coalesced after.
    auto build = [](bool transpose) {
        std::vector<simt::ThreadTrace> traces(32);
        for (uint32_t l = 0; l < 32; ++l) {
            simt::RecordingTracer rec(traces[l]);
            rec.block(1, 10);
            rec.load(0x9000'0000 + l * 512, 32, 4, 4);
            if (transpose)
                transposeRegionLoads(traces[l], 0x9000'0000, l, 512, 32);
        }
        std::vector<const simt::ThreadTrace *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(&t);
        return simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{},
                                               "t");
    };
    const auto row = build(false);
    const auto col = build(true);
    EXPECT_GT(row.totals.globalTransactions,
              col.totals.globalTransactions * 10);
    EXPECT_GT(col.totals.coalescingEfficiency(), 0.99);
}

} // namespace
} // namespace rhythm::core
