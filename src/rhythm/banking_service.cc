#include "rhythm/banking_service.hh"

#include "backend/protocol.hh"
#include "specweb/quickpay.hh"

namespace rhythm::core {

bool
BankingService::resolveType(const http::Request &request,
                            uint32_t &type_id) const
{
    specweb::RequestType type;
    if (!specweb::typeFromPath(request.path, type))
        return false;
    type_id = static_cast<uint32_t>(specweb::typeIndex(type));
    return true;
}

void
BankingService::runStage(uint32_t type_id, int stage,
                         specweb::HandlerContext &ctx) const
{
    app_.runStage(static_cast<specweb::RequestType>(type_id), stage, ctx);
}

bool
BankingService::stageIsLaneParallel(uint32_t type_id, int stage) const
{
    // Audit (see DESIGN.md 6f): every banking stage either only reads
    // shared state (SessionArray::lookup, BankDb reads via composed
    // backend requests) or runs purely on per-lane data — except the
    // two below, which mutate the shared session store / consume its
    // RNG and must keep cohort lane order:
    //  - Login stage 1 calls SessionProvider::create (RNG + bucket
    //    insert). Stages 0 and 2 of Login never touch sessions.
    //  - Logout's single stage calls SessionProvider::destroy.
    const auto type = static_cast<specweb::RequestType>(type_id);
    if (type == specweb::RequestType::Login)
        return stage != 1;
    if (type == specweb::RequestType::Logout)
        return false;
    return true;
}

std::string
BankingService::executeBackend(std::string_view request,
                               simt::TraceRecorder &rec)
{
    return backend_.execute(request, rec);
}

uint32_t
BankingService::backendRequestSlotBytes() const
{
    return backend::kRequestSlotBytes;
}

uint32_t
BankingService::backendResponseSlotBytes() const
{
    return backend::kResponseSlotBytes;
}

std::optional<std::string>
BankingService::serveFallback(const http::Request &request,
                              specweb::SessionProvider &sessions,
                              simt::TraceRecorder &rec)
{
    if (request.path != specweb::kQuickPayPath)
        return std::nullopt;
    return specweb::serveQuickPay(request, backend_, sessions, rec);
}

} // namespace rhythm::core
