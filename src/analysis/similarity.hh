/**
 * @file
 * Request-similarity analysis (paper Section 2.3, Figure 2).
 *
 * The paper Pin-traced individual PHP requests, merged same-type traces
 * with diff, and used (sum of trace lengths / merged length) as the
 * potential data-parallel speedup, normalized to the ideal (linear)
 * speedup. We reproduce the methodology with our own dynamic
 * basic-block traces and the SIMT lockstep merge.
 */

#ifndef RHYTHM_ANALYSIS_SIMILARITY_HH
#define RHYTHM_ANALYSIS_SIMILARITY_HH

#include <vector>

#include "simt/trace.hh"
#include "specweb/types.hh"

namespace rhythm::analysis {

/** Outcome of merging a set of same-type request traces. */
struct SimilarityResult
{
    size_t traceCount = 0;
    /** Sum of the individual traces' dynamic basic-block counts. */
    uint64_t sumBlocks = 0;
    /** Length of the merged (lockstep) trace. */
    uint64_t mergedBlocks = 0;
    /** sumBlocks / mergedBlocks — the potential speedup. */
    double speedup = 0.0;
    /** speedup / traceCount — Figure 2's normalized metric. */
    double normalizedSpeedup = 0.0;
};

/** Merges traces and computes the Figure 2 metric. */
SimilarityResult measureSimilarity(
    const std::vector<const simt::ThreadTrace *> &traces);

/**
 * Fast path of measureSimilarity(): identical metric, computed with
 * the block-schedule-only merge (simt::mergeBlockSchedule), which runs
 * the same lockstep scheduler but skips the memory-op coalescer. The
 * Figure 2 metric only consumes laneBlockExecs and steps — both
 * scheduler-side fields — so the result is bit-equal to the offline
 * one (asserted in tests/platform_test.cc). This is the variant the
 * online FingerprintTracker feeds from at dispatch time.
 */
SimilarityResult measureSimilarityFast(
    const std::vector<const simt::ThreadTrace *> &traces);

/**
 * Captures dynamic traces for @p count independent requests of one type
 * served end-to-end by the host server (fresh sessions per request).
 */
std::vector<simt::ThreadTrace> captureRequestTraces(
    specweb::RequestType type, int count, uint64_t users = 500,
    uint64_t seed = 3);

} // namespace rhythm::analysis

#endif // RHYTHM_ANALYSIS_SIMILARITY_HH
