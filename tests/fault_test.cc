/**
 * @file
 * Tests for deterministic fault injection and graceful degradation:
 * FaultPlan stream independence and targeted faults, lane-level error
 * isolation inside a cohort, cohort retries, partial-cohort launches
 * under injected backend slowdown, load shedding, client disconnects
 * and the request conservation invariant.
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "fault/device_injector.hh"
#include "fault/plan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "specweb/workload.hh"

namespace rhythm {
namespace {

// ---- FaultPlan unit tests ---------------------------------------------

TEST(FaultPlan, QuietByDefault)
{
    fault::FaultConfig cfg;
    EXPECT_TRUE(cfg.allQuiet());
    fault::FaultPlan plan(cfg);
    for (int i = 0; i < 1000; ++i) {
        const fault::Decision d =
            plan.at(fault::Site::BackendFail, des::kMillisecond * i);
        EXPECT_FALSE(d.fire);
        EXPECT_EQ(d.delay, 0u);
        EXPECT_DOUBLE_EQ(d.factor, 1.0);
    }
    EXPECT_EQ(plan.totalInjected(), 0u);
    EXPECT_EQ(plan.consultations(fault::Site::BackendFail), 1000u);
}

TEST(FaultPlan, SameSeedSameDecisions)
{
    fault::FaultConfig cfg;
    cfg.seed = 99;
    cfg.at(fault::Site::BackendFail).probability = 0.3;
    cfg.at(fault::Site::StreamStall).probability = 0.2;
    cfg.at(fault::Site::StreamStall).meanDelay = des::kMillisecond;

    fault::FaultPlan a(cfg);
    fault::FaultPlan b(cfg);
    for (int i = 0; i < 500; ++i) {
        const des::Time now = des::kMicrosecond * i;
        const fault::Decision da = a.at(fault::Site::BackendFail, now);
        const fault::Decision db = b.at(fault::Site::BackendFail, now);
        EXPECT_EQ(da.fire, db.fire);
        const fault::Decision sa = a.at(fault::Site::StreamStall, now);
        const fault::Decision sb = b.at(fault::Site::StreamStall, now);
        EXPECT_EQ(sa.fire, sb.fire);
        EXPECT_EQ(sa.delay, sb.delay);
    }
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
    EXPECT_GT(a.totalInjected(), 0u);
}

TEST(FaultPlan, SitesHaveIndependentStreams)
{
    // Decisions at one site must not shift when another site is
    // consulted in between — that is what makes sweeps comparable.
    fault::FaultConfig cfg;
    cfg.seed = 7;
    cfg.at(fault::Site::BackendFail).probability = 0.25;
    cfg.at(fault::Site::PcieCorrupt).probability = 0.25;

    fault::FaultPlan solo(cfg);
    std::vector<bool> expected;
    for (int i = 0; i < 300; ++i)
        expected.push_back(solo.at(fault::Site::BackendFail, 0).fire);

    fault::FaultPlan interleaved(cfg);
    for (int i = 0; i < 300; ++i) {
        interleaved.at(fault::Site::PcieCorrupt, 0);
        EXPECT_EQ(interleaved.at(fault::Site::BackendFail, 0).fire,
                  expected[static_cast<size_t>(i)]);
        interleaved.at(fault::Site::PcieCorrupt, 0);
    }
}

TEST(FaultPlan, ScheduledFaultFiresAtExactOrdinal)
{
    fault::FaultConfig cfg; // all probabilities zero
    fault::FaultPlan plan(cfg);
    plan.scheduleFault(fault::Site::BackendFail, 5);
    for (uint64_t i = 0; i < 10; ++i) {
        const fault::Decision d = plan.at(fault::Site::BackendFail, 0);
        EXPECT_EQ(d.fire, i == 5) << "consultation " << i;
    }
    EXPECT_EQ(plan.injected(fault::Site::BackendFail), 1u);
}

TEST(FaultPlan, ActiveWindowGatesFaults)
{
    fault::FaultConfig cfg;
    cfg.at(fault::Site::BackendSlow).probability = 1.0;
    cfg.at(fault::Site::BackendSlow).meanDelay = des::kMillisecond;
    cfg.at(fault::Site::BackendSlow).activeFrom = des::kMillisecond;
    cfg.at(fault::Site::BackendSlow).activeUntil = 2 * des::kMillisecond;
    fault::FaultPlan plan(cfg);

    EXPECT_FALSE(plan.at(fault::Site::BackendSlow, 0).fire);
    EXPECT_TRUE(
        plan.at(fault::Site::BackendSlow, des::kMillisecond).fire);
    EXPECT_TRUE(plan.at(fault::Site::BackendSlow,
                        2 * des::kMillisecond - 1)
                    .fire);
    EXPECT_FALSE(
        plan.at(fault::Site::BackendSlow, 2 * des::kMillisecond).fire);
}

// ---- Server-level integration tests -----------------------------------

struct FaultRig
{
    explicit FaultRig(core::RhythmConfig cfg, fault::FaultConfig fcfg)
        : db(200, 11), device(queue, simt::DeviceConfig{}), service(db),
          server(queue, device, service, cfg), plan(fcfg), gen(db, 77)
    {
        server.setFaultPlan(&plan);
        server.setResponseCallback(
            [this](uint64_t client, std::string_view response,
                   des::Time) {
                responses.emplace_back(client, response);
            });
    }

    static core::RhythmConfig
    smallConfig()
    {
        core::RhythmConfig cfg;
        cfg.cohortSize = 32;
        cfg.cohortContexts = 4;
        cfg.cohortTimeout = des::kMillisecond;
        cfg.backendOnDevice = true;
        cfg.networkOverPcie = false;
        return cfg;
    }

    /// Feeds @p n AccountSummary requests through the pull-mode reader.
    void
    feed(uint64_t n)
    {
        simt::NullTracer null;
        sessions.clear();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t user = 1 + i % 150;
            sessions.push_back(server.sessions().create(user, null));
        }
        uint64_t issued = 0;
        server.start([this, n, &issued]() -> std::optional<std::string> {
            if (issued >= n)
                return std::nullopt;
            const uint64_t user = 1 + issued % 150;
            auto req =
                gen.generate(specweb::RequestType::AccountSummary, user,
                             sessions[issued]);
            ++issued;
            return std::move(req.raw);
        });
        queue.run();
    }

    des::EventQueue queue;
    backend::BankDb db;
    simt::Device device;
    core::BankingService service;
    core::RhythmServer server;
    fault::FaultPlan plan;
    specweb::WorkloadGenerator gen;
    std::vector<uint64_t> sessions;
    std::vector<std::pair<uint64_t, std::string>> responses;
};

/// Conservation invariant: every accepted request is answered once.
void
expectConserved(const core::RhythmStats &st)
{
    EXPECT_EQ(st.requestsAccepted, st.responsesCompleted +
                                       st.errorResponses +
                                       st.requestsShed);
}

TEST(FaultInjection, PoisonedLaneIsIsolatedInFullCohort)
{
    // One targeted backend failure inside a full 4096-cohort: exactly
    // one lane answers 503 and the 4095 cohort-mates stay valid.
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.cohortSize = 4096;
    cfg.cohortTimeout = 50 * des::kMillisecond;
    cfg.sessionNodesPerBucket = 128; // ~27 live sessions per user
    fault::FaultConfig fcfg; // all probabilities zero
    FaultRig rig(cfg, fcfg);
    rig.plan.scheduleFault(fault::Site::BackendFail, 1234);

    rig.feed(4096);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.backendFailedLanes, 1u);
    EXPECT_EQ(st.errorResponses, 1u);
    EXPECT_EQ(st.responsesCompleted, 4095u);
    expectConserved(st);
    ASSERT_EQ(rig.responses.size(), 4096u);
    uint64_t errors = 0;
    for (const auto &[client, response] : rig.responses) {
        if (response.rfind("HTTP/1.1 503", 0) == 0) {
            ++errors;
            continue;
        }
        auto v = specweb::validateResponse(
            specweb::RequestType::AccountSummary, response);
        EXPECT_TRUE(v.ok) << v.reason;
    }
    EXPECT_EQ(errors, 1u);
    EXPECT_TRUE(rig.server.drained());
}

TEST(FaultInjection, RetryBudgetAbsorbsTransientFailure)
{
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.backendRetryBudget = 2;
    fault::FaultConfig fcfg;
    FaultRig rig(cfg, fcfg);
    rig.plan.scheduleFault(fault::Site::BackendFail, 7);

    rig.feed(32);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.backendRetries, 1u);
    EXPECT_EQ(st.backendFailedLanes, 0u);
    EXPECT_EQ(st.errorResponses, 0u);
    EXPECT_EQ(st.responsesCompleted, 32u);
    expectConserved(st);
}

TEST(FaultInjection, PartialCohortTimeoutUnderBackendSlowdown)
{
    // A sustained backend brownout must not wedge cohort formation:
    // partially-filled cohorts still launch on timeout and every
    // request is answered.
    core::RhythmConfig cfg = FaultRig::smallConfig();
    fault::FaultConfig fcfg;
    fcfg.at(fault::Site::BackendSlow).probability = 1.0;
    fcfg.at(fault::Site::BackendSlow).meanDelay = 5 * des::kMillisecond;
    FaultRig rig(cfg, fcfg);

    rig.feed(40); // 32-cohort + a 8-wide remainder cohort

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_GE(st.cohortTimeouts, 1u);
    EXPECT_EQ(st.responsesCompleted, 40u);
    EXPECT_GT(st.faultsInjected, 0u);
    expectConserved(st);
    EXPECT_TRUE(rig.server.drained());
    EXPECT_EQ(rig.responses.size(), 40u);
}

TEST(FaultInjection, SameSeedSamePlanIdenticalStats)
{
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.backendRetryBudget = 1;
    fault::FaultConfig fcfg;
    fcfg.seed = 1;
    fcfg.at(fault::Site::BackendFail).probability = 0.05;
    fcfg.at(fault::Site::BackendSlow).probability = 0.2;
    fcfg.at(fault::Site::BackendSlow).meanDelay = des::kMillisecond;
    fcfg.at(fault::Site::ClientDisconnect).probability = 0.02;

    auto run = [&]() {
        FaultRig rig(cfg, fcfg);
        rig.feed(160);
        return std::make_tuple(rig.server.stats().responsesCompleted,
                               rig.server.stats().errorResponses,
                               rig.server.stats().backendRetries,
                               rig.server.stats().backendFailedLanes,
                               rig.server.stats().clientDisconnects,
                               rig.server.stats().faultsInjected,
                               rig.queue.now());
    };
    EXPECT_EQ(run(), run());
}

TEST(FaultInjection, ClientDisconnectsAreCountedNotDelivered)
{
    core::RhythmConfig cfg = FaultRig::smallConfig();
    fault::FaultConfig fcfg;
    fcfg.at(fault::Site::ClientDisconnect).probability = 1.0;
    FaultRig rig(cfg, fcfg);

    rig.feed(32);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.clientDisconnects, 32u);
    EXPECT_EQ(st.errorResponses, 32u);
    EXPECT_EQ(st.responsesCompleted, 0u);
    expectConserved(st);
    EXPECT_TRUE(rig.responses.empty());
}

TEST(FaultInjection, DeadlineMissesAreCounted)
{
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.requestDeadline = des::kNanosecond; // everything misses
    fault::FaultConfig fcfg;
    FaultRig rig(cfg, fcfg);

    rig.feed(32);

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_EQ(st.responsesCompleted, 32u);
    EXPECT_EQ(st.deadlineMisses, 32u);
}

TEST(FaultInjection, BacklogSheddingAnswers503AndConserves)
{
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.cohortContexts = 2;
    cfg.shedBacklogLimit = 16;
    fault::FaultConfig fcfg;
    FaultRig rig(cfg, fcfg);

    // Push-mode burst far above the backlog limit.
    simt::NullTracer null;
    uint64_t accepted_calls = 0;
    for (uint64_t i = 0; i < 400; ++i) {
        const uint64_t user = 1 + i % 150;
        auto req = rig.gen.generate(specweb::RequestType::AccountSummary,
                                    user,
                                    rig.server.sessions().create(user,
                                                                 null));
        if (rig.server.injectRequest(std::move(req.raw), i))
            ++accepted_calls;
    }
    rig.queue.run();

    const core::RhythmStats &st = rig.server.stats();
    EXPECT_GT(st.requestsShed, 0u);
    EXPECT_EQ(st.requestsAccepted, accepted_calls);
    expectConserved(st);
    uint64_t shed_responses = 0;
    for (const auto &[client, response] : rig.responses)
        if (response.rfind("HTTP/1.1 503", 0) == 0)
            ++shed_responses;
    EXPECT_EQ(shed_responses, st.requestsShed);
    EXPECT_EQ(rig.responses.size(), accepted_calls);
    EXPECT_TRUE(rig.server.drained());
}

TEST(FaultInjection, SloSheddingTripsOnObservedP99)
{
    // With an absurdly tight SLO, the server must start shedding as
    // soon as the observed-p99 window has enough samples (two 32-wide
    // cohorts' worth), and count the degraded-mode time.
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.shedLatencySlo = des::kMicrosecond;
    cfg.sloWindow = 64;
    fault::FaultConfig fcfg;
    FaultRig rig(cfg, fcfg);

    simt::NullTracer null;
    auto inject = [&](uint64_t id) {
        const uint64_t user = 1 + id % 150;
        auto req = rig.gen.generate(specweb::RequestType::AccountSummary,
                                    user,
                                    rig.server.sessions().create(user,
                                                                 null));
        ASSERT_TRUE(rig.server.injectRequest(std::move(req.raw), id));
    };
    for (uint64_t wave = 0; wave < 3; ++wave) {
        for (uint64_t i = 0; i < 32; ++i)
            inject(wave * 32 + i);
        rig.server.flush();
        rig.queue.run();
        rig.queue.run(); // timeout stragglers
    }
    // Advance time while degraded, then shed one more request so the
    // open degraded interval lands in the stats.
    rig.queue.scheduleAfter(des::kMillisecond, [] {});
    rig.queue.run();
    inject(96);
    rig.queue.run();

    const core::RhythmStats &st = rig.server.stats();
    // Waves 1 and 2 complete normally (64 samples); wave 3 is shed.
    EXPECT_EQ(st.requestsShed, 33u);
    EXPECT_EQ(st.responsesCompleted, 64u);
    EXPECT_GE(st.degradedTime, des::kMillisecond);
    expectConserved(st);
}

TEST(FaultInjection, DeviceFaultsSlowTheRunDeterministically)
{
    // PCIe corruption (replay) and stream stalls on the host-backend
    // path must stretch simulated time, identically for a fixed seed.
    core::RhythmConfig cfg = FaultRig::smallConfig();
    cfg.backendOnDevice = false; // Titan A: D2H/H2D per backend stage

    auto elapsed = [&](bool faulty) {
        fault::FaultConfig fcfg;
        if (faulty) {
            fcfg.at(fault::Site::PcieCorrupt).probability = 1.0;
            fcfg.at(fault::Site::StreamStall).probability = 0.5;
            fcfg.at(fault::Site::StreamStall).meanDelay =
                des::kMillisecond;
        }
        FaultRig rig(cfg, fcfg);
        fault::installDeviceFaults(rig.device, rig.plan, rig.queue);
        rig.feed(64);
        EXPECT_EQ(rig.server.stats().responsesCompleted, 64u);
        return rig.queue.now();
    };

    const des::Time clean = elapsed(false);
    const des::Time faulty = elapsed(true);
    EXPECT_GT(faulty, clean);
    EXPECT_EQ(faulty, elapsed(true));
}

} // namespace
} // namespace rhythm
