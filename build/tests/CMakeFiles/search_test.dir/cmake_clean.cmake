file(REMOVE_RECURSE
  "CMakeFiles/search_test.dir/search_test.cc.o"
  "CMakeFiles/search_test.dir/search_test.cc.o.d"
  "search_test"
  "search_test.pdb"
  "search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
