/**
 * @file
 * ASCII table and CSV emission for benchmark harnesses.
 *
 * Every bench binary regenerating one of the paper's tables/figures prints
 * its rows through TableWriter so output is uniform and diffable.
 */

#ifndef RHYTHM_UTIL_TABLE_HH
#define RHYTHM_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace rhythm {

/**
 * Collects rows of string cells and renders them either as an aligned
 * ASCII table or as CSV.
 */
class TableWriter
{
  public:
    /** Creates a table with the given column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Renders an aligned, boxed ASCII table. */
    void printAscii(std::ostream &os) const;

    /** Renders RFC-4180-ish CSV (cells containing commas are quoted). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rhythm

#endif // RHYTHM_UTIL_TABLE_HH
