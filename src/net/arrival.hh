/**
 * @file
 * Open-loop traffic generation: seeded arrival processes and replayable
 * mixed-type schedules (DESIGN.md Section 6i).
 *
 * A production server does not see the paper's idealized pre-generated
 * request stream; it sees an open-loop arrival process whose rate moves
 * under it — diurnal load curves and flash crowds. This module supplies
 * those processes for the adaptive-batching experiments:
 *
 *  - Poisson: homogeneous arrivals at a fixed mean rate.
 *  - Diurnal: a raised-cosine rate curve between a trough and the
 *    configured peak over one period (a compressed "day").
 *  - Flash: a steady base rate with a multiplicative spike during a
 *    configured window (the flash crowd).
 *
 * Non-homogeneous processes are sampled by Lewis-Shedler thinning
 * against the envelope's peak rate. All randomness flows through
 * util/rng streams seeded from ArrivalConfig::seed, so the same config
 * always produces the identical event stream — the property tests and
 * the determinism-equivalence gates depend on it. Inter-arrival gaps
 * are clamped strictly positive (>= 1 ps once quantized to des::Time).
 */

#ifndef RHYTHM_NET_ARRIVAL_HH
#define RHYTHM_NET_ARRIVAL_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "des/time.hh"
#include "util/rng.hh"

namespace rhythm::net {

/** Arrival process families. Closed is the legacy pull-source mode. */
enum class ArrivalKind : uint8_t { Closed, Poisson, Diurnal, Flash };

/** Printable name ("closed", "poisson", ...). */
std::string_view arrivalKindName(ArrivalKind kind);

/** Parses an arrival kind name; nullopt on unknown input. */
std::optional<ArrivalKind> parseArrivalKind(std::string_view name);

/** Configuration of one arrival process. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean arrivals per second: the Poisson rate, the diurnal peak
     *  and the flash base rate. */
    double rate = 200e3;
    /** Seed of the arrival-time stream (the type stream of a schedule
     *  derives its own independent seed from this one). */
    uint64_t seed = 1;

    // ---- Diurnal shape ---------------------------------------------
    /** One simulated "day" (rate trough → peak → trough). */
    double diurnalPeriodSec = 0.2;
    /** Trough rate as a fraction of the peak `rate`, in (0, 1]. */
    double diurnalTroughFraction = 0.25;

    // ---- Flash-crowd shape -----------------------------------------
    /** Spike window start (seconds). */
    double flashStartSec = 0.05;
    /** Spike window duration (seconds). */
    double flashDurationSec = 0.05;
    /** Rate multiplier inside the window (>= 1). */
    double flashMultiplier = 8.0;
};

/**
 * One seeded arrival process. Yields a strictly increasing sequence of
 * absolute arrival times; deterministic from ArrivalConfig::seed.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalConfig &config);

    /** The configuration. */
    const ArrivalConfig &config() const { return config_; }

    /** Instantaneous envelope rate at absolute time @p t (seconds). */
    double rateAt(double t) const;

    /** Maximum of the envelope (the thinning bound). */
    double peakRate() const;

    /**
     * Advances to the next arrival and returns its absolute time in
     * seconds. Strictly increasing: every gap is at least 1 ps.
     */
    double nextArrivalSeconds();

    /**
     * Advances to the next arrival and returns the gap from the
     * previous one as simulated time, quantized to des::Time and
     * clamped to >= 1 (never zero or negative) — the form the DES
     * scheduleAfter driving loop consumes.
     */
    des::Time nextGap();

  private:
    ArrivalConfig config_;
    Rng rng_;
    double lastSeconds_ = 0.0;
    des::Time lastTick_ = 0;
};

/** One entry of a replayable mixed-type schedule. */
struct ScheduleEntry
{
    /** Absolute arrival time. */
    des::Time at = 0;
    /** Index into the type-weight vector the schedule was built from. */
    uint32_t type = 0;
};

/**
 * Builds a replayable mixed-type schedule: @p count arrivals with
 * times drawn from an ArrivalProcess over @p config and types drawn
 * from the cumulative distribution of @p typeWeights on an independent
 * stream derived from the same seed. Deterministic: the same
 * (config, weights, count) always yields the identical schedule, so a
 * run can be replayed exactly. Weights must be non-negative with a
 * positive sum.
 */
std::vector<ScheduleEntry>
buildSchedule(const ArrivalConfig &config,
              std::span<const double> typeWeights, uint64_t count);

} // namespace rhythm::net

#endif // RHYTHM_NET_ARRIVAL_HH
