file(REMOVE_RECURSE
  "CMakeFiles/http_test.dir/http_test.cc.o"
  "CMakeFiles/http_test.dir/http_test.cc.o.d"
  "http_test"
  "http_test.pdb"
  "http_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
