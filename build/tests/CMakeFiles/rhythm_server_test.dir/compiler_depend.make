# Empty compiler generated dependencies file for rhythm_server_test.
# This may be replaced when dependencies are built.
