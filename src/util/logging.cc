#include "util/logging.hh"

namespace rhythm {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, std::string_view msg)
{
    if (level < threshold_)
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Debug:
        tag = "debug";
        break;
      case LogLevel::Info:
        tag = "info";
        break;
      case LogLevel::Warn:
        tag = "warn";
        break;
      case LogLevel::Error:
        tag = "error";
        break;
    }
    std::cerr << "[" << tag << "] " << msg << "\n";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

} // namespace detail
} // namespace rhythm
