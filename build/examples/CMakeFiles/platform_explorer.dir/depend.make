# Empty dependencies file for platform_explorer.
# This may be replaced when dependencies are built.
