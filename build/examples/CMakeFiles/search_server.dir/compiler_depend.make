# Empty compiler generated dependencies file for search_server.
# This may be replaced when dependencies are built.
