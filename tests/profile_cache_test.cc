/**
 * @file
 * Unit tests for the warp profile cache: fingerprint normalization
 * (translation invariance and its limits), null-lane aliasing, LRU
 * bookkeeping, and the memoization soundness property that equal
 * fingerprints imply bit-equal WarpStats.
 */

#include <gtest/gtest.h>

#include <vector>

#include "simt/profile_cache.hh"
#include "simt/warp.hh"

namespace rhythm::simt {
namespace {

/**
 * A representative warp: divergent control flow plus Global, Shared and
 * Constant traffic, with every Global address offset by @p base (the
 * cohort-slot translation the fingerprint must normalize away).
 */
std::vector<ThreadTrace>
makeWarp(uint64_t base, uint32_t lanes = 32)
{
    std::vector<ThreadTrace> traces(lanes);
    for (uint32_t l = 0; l < lanes; ++l) {
        RecordingTracer rec(traces[l]);
        rec.block(1, 100);
        rec.load(base + l * 4, 16, 4, 4);
        if (l % 2 == 0) {
            rec.block(2, 40 + l);
            rec.store(base + 4096 + l * 128, 8, 4, 4);
        }
        rec.block(3, 25);
        rec.load(l * 4, 4, 4, 4, MemSpace::Shared);
        rec.load(0x100, 1, 0, 4, MemSpace::Constant);
    }
    return traces;
}

std::vector<const ThreadTrace *>
ptrs(const std::vector<ThreadTrace> &traces)
{
    std::vector<const ThreadTrace *> p;
    for (const auto &t : traces)
        p.push_back(&t);
    return p;
}

TEST(WarpFingerprint, InvariantUnderSegmentMultipleTranslation)
{
    const WarpModel model;
    auto warp_a = makeWarp(0x6000'0000);
    auto warp_b = makeWarp(0x6000'0000 + 37ull * model.segmentBytes);
    auto pa = ptrs(warp_a);
    auto pb = ptrs(warp_b);
    EXPECT_EQ(warpFingerprint(pa, model), warpFingerprint(pb, model));
    // The property the cache relies on: equal keys, bit-equal stats.
    EXPECT_EQ(simulateWarp(pa, model), simulateWarp(pb, model));
}

TEST(WarpFingerprint, UnalignedBaseStillNormalizes)
{
    // Slot bases need not be segment-aligned themselves; only the
    // *difference* between equivalent warps is a segment multiple.
    const WarpModel model;
    auto warp_a = makeWarp(0x6000'0000 + 52);
    auto warp_b = makeWarp(0x6000'0000 + 52 + 1024ull * model.segmentBytes);
    auto pa = ptrs(warp_a);
    auto pb = ptrs(warp_b);
    EXPECT_EQ(warpFingerprint(pa, model), warpFingerprint(pb, model));
    EXPECT_EQ(simulateWarp(pa, model), simulateWarp(pb, model));
}

TEST(WarpFingerprint, IntraSegmentShiftChangesKey)
{
    // A 4-byte shift changes intra-segment alignment (straddle
    // behaviour can differ), so it must produce a different key.
    const WarpModel model;
    auto warp_a = makeWarp(0x6000'0000);
    auto warp_b = makeWarp(0x6000'0004);
    auto pa = ptrs(warp_a);
    auto pb = ptrs(warp_b);
    EXPECT_NE(warpFingerprint(pa, model), warpFingerprint(pb, model));
}

TEST(WarpFingerprint, SharedAddressesAreNotNormalized)
{
    // Shared-space bank mapping is absolute: shifting only the Shared
    // addresses must change the key even though Global content matches.
    const WarpModel model;
    ThreadTrace a, b;
    {
        RecordingTracer rec(a);
        rec.block(1, 10);
        rec.load(0, 4, 4, 4, MemSpace::Shared);
    }
    {
        RecordingTracer rec(b);
        rec.block(1, 10);
        rec.load(128, 4, 4, 4, MemSpace::Shared);
    }
    const ThreadTrace *la = &a;
    const ThreadTrace *lb = &b;
    EXPECT_NE(warpFingerprint({&la, 1}, model),
              warpFingerprint({&lb, 1}, model));
}

TEST(WarpFingerprint, NullLanesCannotAliasActiveOnes)
{
    const WarpModel model;
    auto warp = makeWarp(0, 2);
    const ThreadTrace *both[] = {&warp[0], &warp[1]};
    const ThreadTrace *first_only[] = {&warp[0], nullptr};
    const ThreadTrace *second_only[] = {nullptr, &warp[1]};
    const ThreadTrace *just_one[] = {&warp[0]};
    const WarpKey k_both = warpFingerprint(both, model);
    const WarpKey k_first = warpFingerprint(first_only, model);
    const WarpKey k_second = warpFingerprint(second_only, model);
    const WarpKey k_one = warpFingerprint(just_one, model);
    EXPECT_NE(k_both, k_first);
    EXPECT_NE(k_both, k_second);
    EXPECT_NE(k_first, k_second);
    EXPECT_NE(k_first, k_one); // lane count is part of the key
}

TEST(WarpFingerprint, ModelParametersArePartOfTheKey)
{
    auto warp = makeWarp(0);
    auto p = ptrs(warp);
    WarpModel base_model;
    WarpModel wide = base_model;
    wide.segmentBytes = 64;
    WarpModel window = base_model;
    window.reconvergenceWindow = 8;
    EXPECT_NE(warpFingerprint(p, base_model), warpFingerprint(p, wide));
    EXPECT_NE(warpFingerprint(p, base_model), warpFingerprint(p, window));
}

TEST(ProfileCache, FindCountsHitsAndReturnsExactStats)
{
    ProfileCache cache(4);
    auto warp = makeWarp(0);
    auto p = ptrs(warp);
    const WarpModel model;
    const WarpKey key = warpFingerprint(p, model);
    EXPECT_EQ(cache.find(key), nullptr);
    EXPECT_EQ(cache.stats().hits, 0u);

    const WarpStats fresh = simulateWarp(p, model);
    cache.insert(key, fresh);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);

    const WarpStats *cached = cache.find(key);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(*cached, fresh);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ProfileCache, EvictsLeastRecentlyUsed)
{
    ProfileCache cache(2);
    const WarpKey a{1, 1}, b{2, 2}, c{3, 3};
    WarpStats s;
    s.issueSlots = 7;
    cache.insert(a, s);
    cache.insert(b, s);
    ASSERT_NE(cache.find(a), nullptr); // bump a to MRU
    cache.insert(c, s);                // evicts b, not a
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_NE(cache.find(a), nullptr);
    EXPECT_EQ(cache.find(b), nullptr);
    EXPECT_NE(cache.find(c), nullptr);
}

TEST(ProfileCache, ReinsertRefreshesRecencyWithoutGrowth)
{
    ProfileCache cache(2);
    const WarpKey a{1, 1}, b{2, 2}, c{3, 3};
    WarpStats s;
    cache.insert(a, s);
    cache.insert(b, s);
    cache.insert(a, s); // refresh, not a new entry
    EXPECT_EQ(cache.size(), 2u);
    cache.insert(c, s); // evicts b (a was refreshed)
    EXPECT_EQ(cache.find(b), nullptr);
    EXPECT_NE(cache.find(a), nullptr);
}

TEST(ProfileCache, ClearDropsEntriesButKeepsStats)
{
    ProfileCache cache(4);
    WarpStats s;
    cache.insert(WarpKey{1, 1}, s);
    ASSERT_NE(cache.find(WarpKey{1, 1}), nullptr);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(WarpKey{1, 1}), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(WarpFingerprint, EmptyTagSpanMatchesUntaggedKey)
{
    // The tag-aware overload with no tags must be byte-identical to
    // the untagged key, so single-type launches keep their cross-launch
    // cache entries when fusion is enabled.
    const WarpModel model;
    auto warp = makeWarp(0x6000'0000);
    auto p = ptrs(warp);
    EXPECT_EQ(warpFingerprint(p, model),
              warpFingerprint(p, model, std::span<const uint32_t>{}));
}

TEST(WarpFingerprint, LaneTagsArePartOfTheKey)
{
    // A fused warp must never alias an untagged one even when the lane
    // traces coincide, and distinct tag layouts must hash apart: the
    // memoized stats depend on which request type occupies each lane.
    const WarpModel model;
    auto warp = makeWarp(0, 4);
    auto p = ptrs(warp);
    const std::vector<uint32_t> ab = {1, 1, 2, 2};
    const std::vector<uint32_t> ba = {2, 2, 1, 1};
    const std::vector<uint32_t> uniform = {1, 1, 1, 1};
    const WarpKey untagged = warpFingerprint(p, model);
    const WarpKey k_ab = warpFingerprint(p, model, ab);
    const WarpKey k_ba = warpFingerprint(p, model, ba);
    const WarpKey k_uniform = warpFingerprint(p, model, uniform);
    EXPECT_NE(k_ab, untagged);
    EXPECT_NE(k_uniform, untagged);
    EXPECT_NE(k_ab, k_ba); // placement matters, not just the multiset
    EXPECT_NE(k_ab, k_uniform);
}

TEST(WarpFingerprint, TaggedNullLanesStayDistinct)
{
    // Tags cover padded lanes too: the same active trace with the idle
    // lane attributed to a different type is a different fused layout.
    const WarpModel model;
    auto warp = makeWarp(0, 1);
    const ThreadTrace *lanes[] = {&warp[0], nullptr};
    const std::vector<uint32_t> pad_a = {1, 1};
    const std::vector<uint32_t> pad_b = {1, 2};
    EXPECT_NE(warpFingerprint(lanes, model, pad_a),
              warpFingerprint(lanes, model, pad_b));
}

TEST(ProfileCache, TraceBytesCountActiveLanesOnly)
{
    auto warp = makeWarp(0, 2);
    const ThreadTrace *with_null[] = {&warp[0], nullptr, &warp[1]};
    const ThreadTrace *active[] = {&warp[0], &warp[1]};
    EXPECT_EQ(warpTraceBytes(with_null), warpTraceBytes(active));
    EXPECT_GT(warpTraceBytes(active), 0u);
}

} // namespace
} // namespace rhythm::simt
