# Empty dependencies file for simt_warp_test.
# This may be replaced when dependencies are built.
