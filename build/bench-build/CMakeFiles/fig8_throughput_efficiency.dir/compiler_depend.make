# Empty compiler generated dependencies file for fig8_throughput_efficiency.
# This may be replaced when dependencies are built.
