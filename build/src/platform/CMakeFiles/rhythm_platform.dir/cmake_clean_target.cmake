file(REMOVE_RECURSE
  "librhythm_platform.a"
)
