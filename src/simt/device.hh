/**
 * @file
 * The simulated accelerator device: streams, hardware work queues,
 * copy engines and a processor-sharing kernel execution engine.
 *
 * Semantics mirror the CUDA execution model the paper relies on:
 *
 *  - Commands within a stream execute in order.
 *  - Streams are mapped onto a fixed number of hardware work queues.
 *    With hardwareQueues == 1 (GTX690-style), commands from *all*
 *    streams serialize in enqueue order, creating the false dependencies
 *    the paper observed; with 32 queues (HyperQ, GTX Titan) independent
 *    streams proceed concurrently (Section 6.4).
 *  - Concurrent kernels share device throughput via processor sharing,
 *    with each kernel's share capped by its occupancy (a launch with few
 *    warps cannot fill the machine — hence Rhythm keeps several cohorts
 *    in flight, Section 4.2).
 *  - Host↔device copies use one DMA engine per direction over a PCIe
 *    link model (bandwidth + latency), the Titan A bottleneck (Fig. 9).
 */

#ifndef RHYTHM_SIMT_DEVICE_HH
#define RHYTHM_SIMT_DEVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "des/event_queue.hh"
#include "simt/engine.hh"
#include "simt/kernel.hh"

namespace rhythm::simt {

/**
 * Optional fault-injection hooks consulted by the device. Installed by
 * the fault subsystem (`fault::installDeviceFaults`); when a hook is
 * empty the corresponding site costs nothing. Hooks are consulted in
 * deterministic DES order, so a seeded fault plan reproduces exactly.
 */
struct DeviceFaultHooks
{
    /**
     * Consulted once per queued command immediately before it starts;
     * returns an extra stall (0 = none) during which the hardware
     * queue stays blocked (a wedged stream).
     */
    std::function<des::Time()> commandStall;
    /**
     * Consulted once per PCIe transfer; returns extra transfer time on
     * top of @p nominal (link-layer replay of a corrupted TLP, or
     * bandwidth degradation from retraining).
     */
    std::function<des::Time(bool to_device, uint64_t bytes,
                            des::Time nominal)>
        copyExtra;
    /**
     * Consulted once per link frame transmission when the CRC link
     * model is enabled (DeviceConfig::pcieCrcEnabled); true = the
     * frame arrives corrupted and is retransmitted. When the CRC model
     * is on, the injector routes Site::PcieCorrupt here instead of
     * through copyExtra, so a corruption decision is never consulted
     * twice for one transfer.
     */
    std::function<bool(bool to_device)> frameCorrupt;
};

/**
 * Discrete-event model of a SIMT accelerator.
 *
 * All methods must be called from the owning EventQueue's thread of
 * control (the library is single threaded by design).
 */
class Device
{
  public:
    using Callback = std::function<void()>;

    /** Creates a device attached to the given event queue. */
    Device(des::EventQueue &queue, DeviceConfig config);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Creates a new stream and returns its identifier. */
    int createStream();

    /** Enqueues a host→device copy of @p bytes on @p stream. */
    void copyToDevice(int stream, uint64_t bytes, Callback done);

    /** Enqueues a device→host copy of @p bytes on @p stream. */
    void copyToHost(int stream, uint64_t bytes, Callback done);

    /** Enqueues a kernel launch with the given resource demand. */
    void launchKernel(int stream, KernelCost cost, Callback done);

    /** Installs fault-injection hooks (replace with {} to disarm). */
    void setFaultHooks(DeviceFaultHooks hooks);

    /** The static configuration. */
    const DeviceConfig &config() const { return config_; }

    /**
     * The parallel warp-simulation engine, sized to this device's SM
     * count. Callers profile launches through it (instead of the serial
     * KernelProfile::fromTraces) to get host-side parallelism plus
     * per-SM deterministic accounting; results are byte-identical.
     */
    Engine &engine() { return engine_; }
    const Engine &engine() const { return engine_; }

    /** Aggregate utilization statistics. */
    struct Stats
    {
        uint64_t kernelsLaunched = 0;
        uint64_t copiesToDevice = 0;
        uint64_t copiesToHost = 0;
        uint64_t bytesToDevice = 0;
        uint64_t bytesToHost = 0;
        /** DRAM bytes moved by kernels (for power accounting). */
        uint64_t kernelMemoryBytes = 0;
        /** Integral of kernel-engine service rate over time (seconds). */
        double kernelBusySeconds = 0.0;
        double h2dBusySeconds = 0.0;
        double d2hBusySeconds = 0.0;
        /** CRC link model accounting (all 0 with pcieCrcEnabled off). */
        uint64_t pcieFrames = 0;
        uint64_t pcieWireBytes = 0;
        uint64_t pcieCrcErrors = 0;
        uint64_t pcieRetransmittedBytes = 0;
        uint64_t pcieRetrains = 0;
        // ---- Overlapped copy model (DESIGN.md 6h) ------------------
        /** Wall time with at least one transfer in flight (either
         *  direction; includes the latency phase). */
        double copyBusySeconds = 0.0;
        /** Wall time with a transfer in flight AND a kernel running —
         *  transfer latency hidden under compute. */
        double overlapSeconds = 0.0;
        /** Chunks transmitted per direction (0 on the legacy path). */
        uint64_t copyChunksH2D = 0;
        uint64_t copyChunksD2H = 0;
        /** Per-engine busy time, assignment → completion (empty on the
         *  legacy path). */
        std::vector<double> engineBusySecondsH2D;
        std::vector<double> engineBusySecondsD2H;
    };

    /** Returns utilization statistics up to the current simulated time. */
    Stats stats() const;

    /** Kernel-engine utilization in [0,1] over the device's lifetime. */
    double kernelUtilization() const;

    /** True when no command is pending or executing anywhere. */
    bool idle() const;

  private:
    enum class CommandType { CopyH2D, CopyD2H, Kernel };

    struct Command
    {
        CommandType type;
        uint64_t bytes = 0;
        KernelCost cost;
        Callback done;
        /** The stall hook fires at most once per command. */
        bool stallChecked = false;
    };

    struct RunningKernel
    {
        double remaining = 0.0; //!< Device-seconds of demand left.
        double cap = 1.0;       //!< Occupancy cap on throughput share.
        double rate = 0.0;      //!< Current throughput share.
        int queueIndex = 0;     //!< Hardware queue to release on finish.
        des::Time admitted = 0; //!< Pool admission time (span start).
        KernelCost cost;        //!< Launch metadata for tracing.
    };

    struct PendingCopy
    {
        uint64_t bytes = 0;
        bool toDevice = false;
        int queueIndex = 0;
    };

    struct CopyEngine
    {
        bool busy = false;
        double busySeconds = 0.0;
        std::deque<PendingCopy> waiting;
    };

    /**
     * One DMA engine of the pooled (overlapped) copy model. An engine
     * holds at most one transfer at a time; chunks of concurrent
     * transfers share the link round robin (DESIGN.md 6h).
     */
    struct DmaEngine
    {
        bool busy = false;
        double busySeconds = 0.0;      //!< Assignment → completion.
        des::Time assignedAt = 0;      //!< For busySeconds + spans.
        uint64_t bytesLeft = 0;        //!< Payload not yet on the wire.
        uint64_t totalBytes = 0;       //!< Whole transfer (for tracing).
        des::Time extra = 0;           //!< copyExtra fault, paid on the
                                       //!< final chunk.
        int queueIndex = 0;            //!< HW queue to release on finish.
    };

    /** The pooled copy model's per-direction state. */
    struct CopyDirection
    {
        bool toDevice = false;
        std::vector<DmaEngine> engines;
        /** Transfers waiting for a free engine (FIFO). */
        std::deque<PendingCopy> waiting;
        /** Engines with bytes ready for the link, in service order. */
        std::deque<int> ready;
        bool linkBusy = false;
        double linkBusySeconds = 0.0;
    };

    void enqueue(int stream, Command cmd);
    void startCommand(int queue_index);
    void commandFinished(int queue_index);

    void startCopy(CopyEngine &engine, PendingCopy copy);
    void copyFinished(CopyEngine &engine);

    // ---- Pooled (overlapped) copy path ---------------------------------
    /** True when the multi-engine/chunked model is configured. */
    bool pooledCopies() const
    {
        return config_.copyEngines > 1 || config_.copyChunkBytes > 0;
    }
    void assignEngine(CopyDirection &dir, PendingCopy copy);
    void engineReady(CopyDirection &dir, int engine_index);
    void startNextChunk(CopyDirection &dir);
    void chunkDone(CopyDirection &dir, int engine_index, uint64_t chunk,
                   des::Time wire);
    /** Accrues copy-busy / copy-kernel-overlap wall time up to now. */
    void accrueCopyOverlap();

    void kernelAdmitted(KernelCost cost, int queue_index);
    void advancePool();
    void recomputeRates();
    void reschedulePoolEvent();
    void poolEventFired();

    des::EventQueue &queue_;
    DeviceConfig config_;
    DeviceFaultHooks faultHooks_;
    des::Time createTime_;

    int nextStream_ = 0;
    std::vector<std::deque<Command>> hwQueues_;

    CopyEngine h2d_;
    CopyEngine d2h_;

    CopyDirection h2dPool_;
    CopyDirection d2hPool_;
    /** Transfers currently in flight across both directions (pooled and
     *  legacy paths; drives the overlap accounting). */
    int activeCopies_ = 0;
    des::Time overlapLast_ = 0;
    double overlapSeconds_ = 0.0;
    double copyBusySeconds_ = 0.0;

    std::vector<RunningKernel> pool_;
    des::Time poolLastUpdate_ = 0;
    bool poolEventValid_ = false;
    des::EventId poolEvent_;
    uint64_t pendingCommands_ = 0;

    Stats stats_;
    Engine engine_;
};

} // namespace rhythm::simt

#endif // RHYTHM_SIMT_DEVICE_HH
