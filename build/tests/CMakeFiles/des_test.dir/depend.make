# Empty dependencies file for des_test.
# This may be replaced when dependencies are built.
