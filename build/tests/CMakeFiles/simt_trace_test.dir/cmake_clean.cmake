file(REMOVE_RECURSE
  "CMakeFiles/simt_trace_test.dir/simt_trace_test.cc.o"
  "CMakeFiles/simt_trace_test.dir/simt_trace_test.cc.o.d"
  "simt_trace_test"
  "simt_trace_test.pdb"
  "simt_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
