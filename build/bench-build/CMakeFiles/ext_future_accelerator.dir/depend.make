# Empty dependencies file for ext_future_accelerator.
# This may be replaced when dependencies are built.
