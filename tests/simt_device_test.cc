/**
 * @file
 * Unit tests for the simulated device: streams, hardware queues, copy
 * engines and the processor-sharing kernel pool.
 */

#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hh"
#include "simt/device.hh"

namespace rhythm::simt {
namespace {

DeviceConfig
testConfig()
{
    DeviceConfig cfg;
    cfg.launchOverhead = 0;
    cfg.pcieLatency = 0;
    cfg.pcieBandwidthGBs = 1.0; // 1 byte per ns: easy arithmetic
    return cfg;
}

KernelCost
kernelOf(double seconds, double cap = 1.0)
{
    KernelCost c;
    c.deviceSeconds = seconds;
    c.maxShare = cap;
    return c;
}

TEST(Device, SingleKernelRunsForItsDemand)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    bool done = false;
    dev.launchKernel(s, kernelOf(1e-3), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3, 1e-9);
    EXPECT_TRUE(dev.idle());
}

TEST(Device, LaunchOverheadAddsSerialDelay)
{
    des::EventQueue eq;
    DeviceConfig cfg = testConfig();
    cfg.launchOverhead = 5 * des::kMicrosecond;
    Device dev(eq, cfg);
    int s = dev.createStream();
    dev.launchKernel(s, kernelOf(1e-3), nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3 + 5e-6, 1e-9);
}

TEST(Device, StreamCommandsSerialize)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    std::vector<int> order;
    dev.launchKernel(s, kernelOf(1e-3), [&] { order.push_back(1); });
    dev.launchKernel(s, kernelOf(1e-3), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_NEAR(des::toSeconds(eq.now()), 2e-3, 1e-9);
}

TEST(Device, IndependentStreamsShareThroughput)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s1 = dev.createStream();
    int s2 = dev.createStream();
    double t1 = 0, t2 = 0;
    dev.launchKernel(s1, kernelOf(1e-3),
                     [&] { t1 = des::toSeconds(eq.now()); });
    dev.launchKernel(s2, kernelOf(1e-3),
                     [&] { t2 = des::toSeconds(eq.now()); });
    eq.run();
    // Two equal kernels sharing the device: both finish at ~2 ms.
    EXPECT_NEAR(t1, 2e-3, 1e-6);
    EXPECT_NEAR(t2, 2e-3, 1e-6);
}

TEST(Device, OccupancyCapLimitsSmallKernels)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    // A kernel that can only use 10% of the machine takes 10× longer.
    dev.launchKernel(s, kernelOf(1e-3, 0.1), nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-2, 1e-6);
}

TEST(Device, CappedKernelsOverlapPerfectly)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    // Four kernels capped at 25% each: all four run concurrently and the
    // machine is exactly saturated.
    for (int i = 0; i < 4; ++i)
        dev.launchKernel(dev.createStream(), kernelOf(1e-3, 0.25), nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 4e-3, 1e-6);
    EXPECT_NEAR(dev.stats().kernelBusySeconds, 4e-3, 1e-6);
}

TEST(Device, SingleHardwareQueueCreatesFalseDependencies)
{
    des::EventQueue eq;
    DeviceConfig cfg = testConfig();
    cfg.hardwareQueues = 1; // GTX690-style
    Device dev(eq, cfg);
    int s1 = dev.createStream();
    int s2 = dev.createStream();
    dev.launchKernel(s1, kernelOf(1e-3, 0.25), nullptr);
    dev.launchKernel(s2, kernelOf(1e-3, 0.25), nullptr);
    eq.run();
    // Serialized (4 ms each because of the cap): 8 ms total instead of
    // the 4 ms overlap HyperQ achieves in CappedKernelsOverlapPerfectly.
    EXPECT_NEAR(des::toSeconds(eq.now()), 8e-3, 1e-6);
}

TEST(Device, CopyTimeMatchesBandwidth)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    bool done = false;
    dev.copyToDevice(s, 1000000, [&] { done = true; }); // 1 MB at 1 GB/s
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3, 1e-9);
    EXPECT_EQ(dev.stats().bytesToDevice, 1000000u);
    EXPECT_EQ(dev.stats().copiesToDevice, 1u);
}

TEST(Device, CopyLatencyAdds)
{
    des::EventQueue eq;
    DeviceConfig cfg = testConfig();
    cfg.pcieLatency = 8 * des::kMicrosecond;
    Device dev(eq, cfg);
    int s = dev.createStream();
    dev.copyToHost(s, 1000000, nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3 + 8e-6, 1e-9);
}

TEST(Device, SameDirectionCopiesSerializeOnEngine)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s1 = dev.createStream();
    int s2 = dev.createStream();
    double t2 = 0;
    dev.copyToDevice(s1, 1000000, nullptr);
    dev.copyToDevice(s2, 1000000, [&] { t2 = des::toSeconds(eq.now()); });
    eq.run();
    EXPECT_NEAR(t2, 2e-3, 1e-9);
}

TEST(Device, OppositeDirectionCopiesOverlap)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s1 = dev.createStream();
    int s2 = dev.createStream();
    dev.copyToDevice(s1, 1000000, nullptr);
    dev.copyToHost(s2, 1000000, nullptr);
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-3, 1e-9);
}

TEST(Device, PipelineCopyKernelCopy)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    std::vector<int> order;
    dev.copyToDevice(s, 1000, [&] { order.push_back(1); });
    dev.launchKernel(s, kernelOf(1e-6), [&] { order.push_back(2); });
    dev.copyToHost(s, 1000, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_NEAR(des::toSeconds(eq.now()), 1e-6 + 2e-6, 1e-9);
}

TEST(Device, CallbackCanEnqueueMoreWork)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    int completions = 0;
    std::function<void()> chain = [&] {
        if (++completions < 5)
            dev.launchKernel(s, kernelOf(1e-4), chain);
    };
    dev.launchKernel(s, kernelOf(1e-4), chain);
    eq.run();
    EXPECT_EQ(completions, 5);
    EXPECT_NEAR(des::toSeconds(eq.now()), 5e-4, 1e-7);
}

TEST(Device, UtilizationReflectsIdleGaps)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    // 1 ms of work, then idle until 4 ms.
    dev.launchKernel(s, kernelOf(1e-3), nullptr);
    eq.run();
    eq.scheduleAt(des::fromSeconds(4e-3), [] {});
    eq.run();
    EXPECT_NEAR(dev.kernelUtilization(), 0.25, 1e-3);
}

TEST(Device, ManySmallKernelsNeedConcurrencyToSaturate)
{
    // With 8 streams of cap-1/8 kernels inflight continuously the device
    // saturates; utilization ≈ 1.
    des::EventQueue eq;
    Device dev(eq, testConfig());
    const int kStreams = 8;
    const int kPerStream = 10;
    for (int i = 0; i < kStreams; ++i) {
        int s = dev.createStream();
        for (int j = 0; j < kPerStream; ++j)
            dev.launchKernel(s, kernelOf(1e-4, 0.125), nullptr);
    }
    eq.run();
    EXPECT_NEAR(des::toSeconds(eq.now()), 8e-3, 1e-5);
    EXPECT_NEAR(dev.kernelUtilization(), 1.0, 1e-3);
}

TEST(Device, StatsCountKernels)
{
    des::EventQueue eq;
    Device dev(eq, testConfig());
    int s = dev.createStream();
    for (int i = 0; i < 3; ++i)
        dev.launchKernel(s, kernelOf(1e-6), nullptr);
    eq.run();
    EXPECT_EQ(dev.stats().kernelsLaunched, 3u);
}

} // namespace
} // namespace rhythm::simt
