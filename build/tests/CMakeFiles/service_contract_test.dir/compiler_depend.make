# Empty compiler generated dependencies file for service_contract_test.
# This may be replaced when dependencies are built.
