/**
 * @file
 * Shared site chrome and HTML helpers for the Banking pages.
 *
 * All pages share a masthead, navigation bar, inline stylesheet and
 * footer (static template content, served from constant memory on the
 * device) plus per-page disclosure/marketing sections that give each page
 * its SPECWeb-calibrated size.
 */

#ifndef RHYTHM_SPECWEB_HTML_HH
#define RHYTHM_SPECWEB_HTML_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "specweb/context.hh"

namespace rhythm::specweb::html {

/** Chrome basic-block ids (shared across all page types). */
enum ChromeBlock : uint32_t {
    kBlockHttpHeader = 2900,
    kBlockHead = 2901,
    kBlockNav = 2902,
    kBlockFooter = 2903,
    kBlockFiller = 2904,
    kBlockTable = 2905,
};

/** Bytes reserved for the back-patched Content-Length value. */
inline constexpr size_t kContentLengthReserve = 10;

/**
 * Emits the HTTP response header with a whitespace-reserved
 * Content-Length field (Section 4.3.2 "Whitespace Padding in HTML
 * Headers").
 *
 * @param set_cookie Optional Set-Cookie header value ("" omits it).
 * @return Offset of the Content-Length reservation, to be passed to
 *         finishResponse().
 */
size_t beginResponse(ResponseWriter &out, std::string_view set_cookie = "");

/**
 * Back-patches the Content-Length reservation with the actual body size
 * and returns the body size.
 *
 * @param header_end Total header size (bytes before the body), as
 *        captured right after beginResponse() returned.
 */
size_t finishResponse(ResponseWriter &out, size_t content_length_offset,
                      size_t header_end);

/** Emits DOCTYPE, head (inline CSS) and opens the body. */
void pageHead(ResponseWriter &out, std::string_view title);

/** Emits the masthead and navigation bar. */
void pageNav(ResponseWriter &out, std::string_view user_name);

/** Emits the footer and closes body/html. */
void pageFooter(ResponseWriter &out);

/**
 * Emits @p count boilerplate disclosure/marketing paragraphs (~512 bytes
 * each). Used to reach each page's SPECWeb-reference size.
 */
void fillerParagraphs(ResponseWriter &out, int count);

/** Opens an HTML data table with the given column headers. */
void tableOpen(ResponseWriter &out, std::initializer_list<std::string_view>
                                        headers);

/** Closes an HTML data table. */
void tableClose(ResponseWriter &out);

/** Formats cents as a currency string, e.g. "$1,234.56" / "-$0.07". */
std::string formatCents(int64_t cents);

/** Formats a synthetic day number as "YYYY-MM-DD". */
std::string formatDate(uint32_t day);

} // namespace rhythm::specweb::html

#endif // RHYTHM_SPECWEB_HTML_HH
