file(REMOVE_RECURSE
  "librhythm_util.a"
)
