/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hh"

namespace rhythm::des {
namespace {

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    Time fired_at = 0;
    eq.scheduleAt(50, [&] {
        eq.scheduleAfter(25, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 75u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.scheduleAt(10, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // already removed
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, HorizonStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(100, [&] { ++fired; });
    EXPECT_EQ(eq.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HorizonWithEmptyQueueAdvancesClock)
{
    EventQueue eq;
    EXPECT_EQ(eq.run(500), 0u);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, StopRequestHonoured)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] {
        ++fired;
        eq.stop();
    });
    eq.scheduleAt(2, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepDispatchesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(5, [&] { ++fired; });
    eq.scheduleAt(6, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledDuringDispatchRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            eq.scheduleAfter(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(Time, UnitConversions)
{
    EXPECT_EQ(kSecond, 1000u * kMillisecond);
    EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toMillis(kSecond), 1000.0);
    EXPECT_DOUBLE_EQ(toMicros(kMicrosecond), 1.0);
    EXPECT_EQ(fromSeconds(1.5), kSecond + 500 * kMillisecond);
    EXPECT_EQ(fromSeconds(0.0), 0u);
}

} // namespace
} // namespace rhythm::des
