/**
 * @file
 * Adapter installing FaultPlan-driven injection on a simulated device:
 * stream stalls before command starts, and PCIe corruption (link-layer
 * replay) / bandwidth degradation on transfers. The hooks consult the
 * plan in deterministic DES order, so device-level faults reproduce
 * exactly from the plan seed.
 */

#ifndef RHYTHM_FAULT_DEVICE_INJECTOR_HH
#define RHYTHM_FAULT_DEVICE_INJECTOR_HH

#include "des/event_queue.hh"
#include "fault/plan.hh"
#include "simt/device.hh"

namespace rhythm::fault {

/**
 * Installs stall/PCIe fault hooks consulting @p plan on @p device.
 * Both references must outlive the device's use. Passing a plan whose
 * schedules are all quiet is valid and costs one probability draw per
 * command/copy.
 */
void installDeviceFaults(simt::Device &device, FaultPlan &plan,
                         des::EventQueue &queue);

} // namespace rhythm::fault

#endif // RHYTHM_FAULT_DEVICE_INJECTOR_HH
