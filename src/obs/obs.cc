#include "obs/obs.hh"

namespace rhythm::obs {

Observability &
global()
{
    static Observability instance;
    return instance;
}

} // namespace rhythm::obs
