#include "search/index.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.hh"

namespace rhythm::search {
namespace {

/** Index basic-block ids. */
enum IndexBlock : uint32_t {
    kBlockLookup = 7000,
    kBlockPostingScan = 7001,
    kBlockRank = 7002,
    kBlockSuggestScan = 7003,
};

} // namespace

InvertedIndex::InvertedIndex(const Corpus &corpus) : corpus_(corpus)
{
    lists_.resize(corpus.vocabularySize());
    std::unordered_map<uint32_t, uint32_t> tf;
    for (uint32_t d = 1; d <= corpus.numDocs(); ++d) {
        const Document *doc = corpus.document(d);
        tf.clear();
        for (uint32_t w : doc->words)
            ++tf[w];
        for (const auto &[w, count] : tf) {
            lists_[w].push_back(Posting{d, count});
            ++totalPostings_;
        }
    }

    sortedWords_.resize(corpus.vocabularySize());
    for (uint32_t w = 0; w < corpus.vocabularySize(); ++w)
        sortedWords_[w] = w;
    std::sort(sortedWords_.begin(), sortedWords_.end(),
              [&](uint32_t a, uint32_t b) {
                  return corpus.word(a) < corpus.word(b);
              });
}

bool
InvertedIndex::wordId(std::string_view word, uint32_t &out) const
{
    // Binary search over the lexicographically sorted vocabulary.
    auto it = std::lower_bound(
        sortedWords_.begin(), sortedWords_.end(), word,
        [&](uint32_t w, std::string_view needle) {
            return corpus_.word(w) < needle;
        });
    if (it == sortedWords_.end() || corpus_.word(*it) != word)
        return false;
    out = *it;
    return true;
}

const std::vector<Posting> &
InvertedIndex::postings(uint32_t word_id) const
{
    static const std::vector<Posting> kEmpty;
    if (word_id >= lists_.size())
        return kEmpty;
    return lists_[word_id];
}

std::vector<Hit>
InvertedIndex::query(const std::vector<uint32_t> &terms, size_t k,
                     simt::TraceRecorder &rec) const
{
    rec.block(kBlockLookup,
              60 + 40 * static_cast<uint32_t>(terms.size()));

    // Score accumulation over the union of posting lists.
    std::unordered_map<uint32_t, double> scores;
    const double num_docs = corpus_.numDocs();
    for (uint32_t term : terms) {
        const auto &list = postings(term);
        if (list.empty())
            continue;
        const double idf =
            std::log(1.0 + num_docs / static_cast<double>(list.size()));
        rec.block(kBlockPostingScan,
                  24 + 6 * static_cast<uint32_t>(list.size()));
        // Posting lists live in (device) global memory.
        rec.load(0x3000'0000 + static_cast<uint64_t>(term) * 4096,
                 static_cast<uint32_t>(list.size()), 8, 8);
        for (const Posting &p : list)
            scores[p.docId] += (1.0 + std::log(1.0 + p.termFrequency)) *
                               idf;
    }

    std::vector<Hit> hits;
    hits.reserve(scores.size());
    for (const auto &[doc, score] : scores)
        hits.push_back(Hit{doc, score});
    rec.block(kBlockRank, 40 + 8 * static_cast<uint32_t>(hits.size()));
    const size_t take = std::min(k, hits.size());
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(take),
                      hits.end(), [](const Hit &a, const Hit &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.docId < b.docId;
                      });
    hits.resize(take);
    return hits;
}

std::vector<uint32_t>
InvertedIndex::suggest(std::string_view prefix, size_t k,
                       simt::TraceRecorder &rec) const
{
    rec.block(kBlockSuggestScan,
              50 + 4 * static_cast<uint32_t>(prefix.size()));
    std::vector<uint32_t> out;
    auto it = std::lower_bound(
        sortedWords_.begin(), sortedWords_.end(), prefix,
        [&](uint32_t w, std::string_view needle) {
            return corpus_.word(w) < needle;
        });
    while (it != sortedWords_.end() && out.size() < k) {
        const std::string &w = corpus_.word(*it);
        if (w.size() < prefix.size() ||
            std::string_view(w).substr(0, prefix.size()) != prefix)
            break;
        out.push_back(*it);
        ++it;
    }
    rec.block(kBlockSuggestScan,
              10 + 12 * static_cast<uint32_t>(out.size()));
    return out;
}

} // namespace rhythm::search
