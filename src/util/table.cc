#include "util/table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RHYTHM_ASSERT(!headers_.empty());
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    RHYTHM_ASSERT(cells.size() == headers_.size(),
                  "row width must match header width");
    rows_.push_back(std::move(cells));
}

void
TableWriter::printAscii(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&]() {
        os << "+";
        for (size_t w : widths) {
            for (size_t i = 0; i < w + 2; ++i)
                os << "-";
            os << "+";
        }
        os << "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c];
            for (size_t i = cells[c].size(); i < widths[c]; ++i)
                os << " ";
            os << " |";
        }
        os << "\n";
    };

    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            const bool quote =
                cells[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace rhythm
