/**
 * @file
 * Minimal command-line flag parsing for the tools and harnesses.
 *
 * Supports --key=value and --key value forms plus boolean switches
 * (--flag / --no-flag). Unknown flags are reported as errors so typos
 * in experiment configurations do not pass silently.
 */

#ifndef RHYTHM_UTIL_FLAGS_HH
#define RHYTHM_UTIL_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rhythm {

/** Parsed command line. */
class Flags
{
  public:
    /**
     * Parses argv.
     * @return false (with an error message in error()) on malformed
     *         input; flags are still usable for whatever parsed.
     */
    bool parse(int argc, const char *const *argv);

    /** True if the flag was given. */
    bool has(std::string_view name) const;

    /** String value (or @p fallback when absent). */
    std::string getString(std::string_view name,
                          std::string_view fallback = "") const;

    /** Unsigned integer value (or @p fallback when absent/malformed). */
    uint64_t getU64(std::string_view name, uint64_t fallback) const;

    /** Double value (or @p fallback when absent/malformed). */
    double getDouble(std::string_view name, double fallback) const;

    /**
     * Boolean value: --name or --name=true|1 give true, --no-name or
     * --name=false|0 give false; @p fallback when absent.
     */
    bool getBool(std::string_view name, bool fallback) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Names of all flags given (for unknown-flag validation). */
    std::vector<std::string> names() const;

    /**
     * Verifies every given flag is in @p known.
     * @return false (with error()) when an unknown flag was given.
     */
    bool allowOnly(const std::vector<std::string> &known);

    /** Parse/validation error message ("" when fine). */
    const std::string &error() const { return error_; }

  private:
    std::map<std::string, std::string, std::less<>> values_;
    std::vector<std::string> positional_;
    std::string error_;
};

} // namespace rhythm

#endif // RHYTHM_UTIL_FLAGS_HH
