file(REMOVE_RECURSE
  "CMakeFiles/specweb_test.dir/specweb_test.cc.o"
  "CMakeFiles/specweb_test.dir/specweb_test.cc.o.d"
  "specweb_test"
  "specweb_test.pdb"
  "specweb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specweb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
