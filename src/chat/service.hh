/**
 * @file
 * The Chat workload as a Rhythm Service (paper Section 8).
 *
 * Four cohort types:
 *
 * | id | page      | path          | backend | buffer | mix % |
 * |----|-----------|---------------|---------|--------|-------|
 * | 0  | room list | /chat         | ROOMS   | 8 KiB  | 5     |
 * | 1  | history   | /chat/history | HIST    | 16 KiB | 25    |
 * | 2  | post      | /chat/post    | POST    | 4 KiB  | 15    |
 * | 3  | poll      | /chat/poll    | POLL    | 4 KiB  | 55    |
 *
 * Chat stresses the pipeline differently from Banking and Search: the
 * dominant type (poll) is tiny and mutation (post) is common, so
 * cohorts are short and the backend sees concurrent writes.
 */

#ifndef RHYTHM_CHAT_SERVICE_HH
#define RHYTHM_CHAT_SERVICE_HH

#include "chat/store.hh"
#include "rhythm/service.hh"

namespace rhythm::chat {

/** Cohort type ids of the Chat service. */
enum class PageType : uint32_t {
    RoomList = 0,
    History = 1,
    Post = 2,
    Poll = 3,
};

/** Number of Chat page types. */
inline constexpr uint32_t kNumPageTypes = 4;

/** Static metadata of one page type. */
struct PageTypeInfo
{
    PageType type;
    std::string_view name;
    std::string_view path;
    int backendRequests;
    uint32_t bufferBytes;
    double mixPercent;
};

/** Metadata table (enum order). */
const PageTypeInfo *pageTable();

/** Chat on Rhythm. */
class ChatService : public core::Service
{
  public:
    /** Binds to a room store (not owned). */
    explicit ChatService(RoomStore &store) : store_(store) {}

    uint32_t numTypes() const override { return kNumPageTypes; }
    bool resolveType(const http::Request &request,
                     uint32_t &type_id) const override;
    std::string_view typeName(uint32_t type_id) const override;
    int numStages(uint32_t type_id) const override;
    uint32_t responseBufferBytes(uint32_t type_id) const override;
    void runStage(uint32_t type_id, int stage,
                  specweb::HandlerContext &ctx) const override;
    std::string executeBackend(std::string_view request,
                               simt::TraceRecorder &rec) override;

  private:
    void roomList(int stage, specweb::HandlerContext &ctx) const;
    void history(int stage, specweb::HandlerContext &ctx) const;
    void post(int stage, specweb::HandlerContext &ctx) const;
    void poll(int stage, specweb::HandlerContext &ctx) const;

    RoomStore &store_;
};

/** Generates mix-distributed Chat requests. */
class ChatGenerator
{
  public:
    ChatGenerator(const RoomStore &store, uint64_t seed);

    /** Samples a page type from the mix. */
    PageType sampleType();

    /** Builds a raw request of the given type. */
    std::string generate(PageType type);

    /** Convenience: sampleType + generate (returns type via out). */
    std::string next(PageType &type_out);

  private:
    const RoomStore &store_;
    Rng rng_;
    double cumulative_[kNumPageTypes];
};

/** Validates a Chat response (status, Content-Length, page marker). */
bool validateChatResponse(PageType type, std::string_view raw,
                          std::string *reason = nullptr);

} // namespace rhythm::chat

#endif // RHYTHM_CHAT_SERVICE_HH
