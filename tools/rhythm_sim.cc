/**
 * @file
 * rhythm_sim: the configurable simulation driver.
 *
 * Runs either shipped workload (banking / search) on any platform
 * configuration — Titan A/B/C presets or fully custom device knobs —
 * and prints a consolidated report: throughput, latency distribution,
 * device/PCIe utilization, SIMD efficiency, power and requests/Joule.
 *
 * Examples:
 *   rhythm_sim --workload=banking --platform=titanB
 *   rhythm_sim --workload=banking --platform=titanA --pcie-gbs=24
 *   rhythm_sim --workload=search --cohort-size=2048 --cohorts=16
 *   rhythm_sim --workload=banking --type=logout --no-padding
 */

#include <fstream>
#include <iostream>

#include "backend/bankdb.hh"
#include "backend/recovery.hh"
#include "bench/common.hh"
#include "chat/store.hh"
#include "chat/service.hh"
#include "fault/device_injector.hh"
#include "fault/plan.hh"
#include "obs/obs.hh"
#include "platform/titan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/server.hh"
#include "search/service.hh"
#include "specweb/workload.hh"
#include "util/flags.hh"
#include "util/hash.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace rhythm;

int
usage(const std::string &error)
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: rhythm_sim [flags]\n"
           "  --workload=banking|search|chat  workload to serve (banking)\n"
           "  --platform=titanA|titanB|titanC  preset (titanB)\n"
           "  --type=<name>               isolate one request type\n"
           "  --cohort-size=N             requests per cohort (4096)\n"
           "  --cohorts=N                 cohorts to push through (10)\n"
           "  --contexts=N                cohort contexts (8)\n"
           "  --timeout-ms=X              formation timeout (2.0)\n"
           "  --lane-sample=N             executed lanes/cohort (128)\n"
           "  --users=N                   bank database users (2000)\n"
           "  --docs=N                    search corpus documents (4000)\n"
           "  --sms=N                     streaming multiprocessors\n"
           "  --mem-gbs=X                 device DRAM bandwidth\n"
           "  --pcie-gbs=X                PCIe bandwidth per direction\n"
           "  --queues=N                  hardware work queues\n"
           "  --no-transpose              row-major cohort buffers\n"
           "  --no-padding                disable whitespace padding\n"
           "  --seed=N                    deterministic seed (42)\n"
           "  --sim-threads=N             host worker threads for the\n"
           "                              execution engine (1 = serial;\n"
           "                              outputs are byte-identical for\n"
           "                              any N)\n"
           "  --profile-cache=on|off      memoize warp profiles across\n"
           "                              launches (off; outputs are\n"
           "                              byte-identical either way, only\n"
           "                              host wall-clock changes)\n"
           "  --profile-cache-entries=N   cache capacity in warp entries\n"
           "                              (4096)\n"
           "transfer/compute overlap (off by default):\n"
           "  --overlap=on|off            pipeline parse of cohort k+1\n"
           "                              under kernels of cohort k and\n"
           "                              ship only occupied slot bytes\n"
           "                              (off; implies --copy-engines=4\n"
           "                              and --copy-chunk-kb=256 unless\n"
           "                              overridden; responses are\n"
           "                              byte-identical on or off)\n"
           "  --copy-engines=N            modeled DMA engines per PCIe\n"
           "                              direction (1)\n"
           "  --copy-chunk-kb=N           DMA chunk granularity (0 =\n"
           "                              whole transfer)\n"
           "deadline-aware adaptive batching (off by default):\n"
           "  --batching=fixed|adaptive   cohort formation policy "
           "(fixed;\n"
           "                              adaptive dispatches a forming\n"
           "                              cohort early when the oldest\n"
           "                              request's deadline slack drops\n"
           "                              below the modeled pipeline "
           "cost)\n"
           "  --deadline-default-ms=X     deadline for unlisted types "
           "(10)\n"
           "  --deadline-ms-<type>=X      per-type deadline by slugged\n"
           "                              type name (e.g.\n"
           "                              --deadline-ms-transfer=3)\n"
           "  --slack-safety=X            cost-estimate safety factor "
           "(1.2)\n"
           "  --adaptive-scan-us=X        slack-scan period (200)\n"
           "  --admission=on|off          deadline-aware admission "
           "control (on)\n"
           "cross-type cohort fusion (off by default):\n"
           "  --fusion=on|off             pack similarity-compatible\n"
           "                              partial cohorts into shared\n"
           "                              warps instead of padding each\n"
           "                              (off; responses are\n"
           "                              byte-identical on or off)\n"
           "  --fusion-threshold=X        minimum online pair similarity\n"
           "                              to fuse (0.5)\n"
           "  --fusion-max-cohorts=N      cohorts fusable per launch "
           "(4)\n"
           "  --fingerprint-alpha=X       similarity EWMA smoothing "
           "(0.25)\n"
           "  --fingerprint-lanes=N       lanes sampled per fingerprint\n"
           "                              update (32)\n"
           "multi-device sharding (single device by default; banking,\n"
           "open-loop arrivals only):\n"
           "  --devices=N                 serve from an N-device fleet:\n"
           "                              per-device event streams,\n"
           "                              PCIe links, copy engines and\n"
           "                              backends behind a front-end\n"
           "                              balancer (1; outputs are\n"
           "                              byte-identical across\n"
           "                              --sim-threads for any N)\n"
           "  --balance=hash|least        session-hash or least-\n"
           "                              outstanding routing (hash)\n"
           "  --shard-seed=N              user-to-shard map seed\n"
           "  --cross-shard=F             fraction of arrivals that also\n"
           "                              start a two-phase cross-shard\n"
           "                              transfer (0)\n"
           "open-loop arrivals (closed loop by default; banking only):\n"
           "  --arrival=closed|poisson|diurnal|flash\n"
           "                              arrival process driving "
           "injection\n"
           "  --arrival-rate=X            mean arrival rate, reqs/s "
           "(200000)\n"
           "  --arrival-seed=N            arrival-stream seed (1)\n"
           "  --flash-mult=X              flash-crowd rate multiplier "
           "(8)\n"
           "  --flash-start-ms=X          flash onset (50)\n"
           "  --flash-dur-ms=X            flash duration (50)\n"
           "  --diurnal-period-ms=X       diurnal cycle period (200)\n"
           "  --diurnal-trough=F          trough fraction of peak rate "
           "(0.25)\n"
           "observability (off by default):\n"
           "  --json=PATH                 machine-readable result JSON\n"
           "  --trace-out=PATH            Chrome trace_event JSON "
           "(perfetto)\n"
           "  --digest-out=PATH           order-insensitive FNV-1a digest\n"
           "                              of every response (equivalence\n"
           "                              gates compare it across\n"
           "                              --overlap and --sim-threads)\n"
           "fault injection (all off by default):\n"
           "  --fault-seed=N              fault plan seed (1)\n"
           "  --backend-fail=P            backend call failure probability\n"
           "  --backend-slow=P            backend brownout probability\n"
           "  --backend-slow-ms=X         mean brownout delay (5.0)\n"
           "  --pcie-corrupt=P            PCIe corrupt+replay probability\n"
           "  --pcie-degrade=P            PCIe degradation probability\n"
           "  --pcie-degrade-factor=X     degradation slowdown (2.0)\n"
           "  --stall=P                   stream stall probability\n"
           "  --stall-ms=X                mean stall duration (1.0)\n"
           "  --disconnect=P              client disconnect probability\n"
           "  --crash=P                   backend crash-restart "
           "probability\n"
           "  --torn=P                    tear the final journal record "
           "on crash\n"
           "  --hang=P                    kernel hang probability\n"
           "  --hang-ms=X                 injected hang duration (0 = "
           "derived)\n"
           "crash recovery & stragglers (all off by default):\n"
           "  --watchdog-ms=X             cohort watchdog timeout; hedge "
           "stragglers\n"
           "  --pcie-crc                  frame CRC + bounded retransmit "
           "on PCIe\n"
           "  --recovery                  write-ahead journal + "
           "checkpointed backend\n"
           "                              (banking workload only)\n"
           "  --checkpoint-interval=N     journaled records between "
           "checkpoints (4096)\n"
           "graceful degradation (all off by default):\n"
           "  --retry-budget=N            backend retries per cohort\n"
           "  --backoff-us=X              retry backoff base (50)\n"
           "  --deadline-ms=X             per-request deadline\n"
           "  --shed-backlog=N            shed above this formation "
           "backlog\n"
           "  --shed-p99-ms=X             shed above this observed p99\n";
    return error.empty() ? 0 : 2;
}

/**
 * Prints the fault/degradation report section. Only called when a fault
 * plan or a degradation knob is armed, so default runs keep the exact
 * seed output.
 */
void
faultReport(const core::RhythmStats &stats, const fault::FaultPlan *plan,
            const backend::RecoverableBackend *recovery)
{
    TableWriter t({"robustness metric", "value"});
    t.addRow({"requests shed (503)", withCommas(stats.requestsShed)});
    t.addRow({"reader drops", withCommas(stats.readerDrops)});
    t.addRow({"backend retries", withCommas(stats.backendRetries)});
    t.addRow({"backend failed lanes",
              withCommas(stats.backendFailedLanes)});
    t.addRow({"deadline misses", withCommas(stats.deadlineMisses)});
    t.addRow({"client disconnects", withCommas(stats.clientDisconnects)});
    t.addRow({"degraded-mode time",
              formatDouble(des::toMillis(stats.degradedTime), 2) +
                  " ms"});
    t.addRow({"kernel hangs injected", withCommas(stats.kernelHangs)});
    t.addRow({"watchdog fires", withCommas(stats.watchdogFires)});
    t.addRow({"hedge wins / cancelled",
              withCommas(stats.hedgeWins) + " / " +
                  withCommas(stats.hedgeCancelled)});
    t.addRow({"hedge backend replays",
              withCommas(stats.hedgeReplayedCalls)});
    if (recovery) {
        const backend::RecoveryStats &rs = recovery->stats();
        t.addRow({"backend crashes", withCommas(rs.crashes)});
        t.addRow({"journaled records", withCommas(rs.journaledRecords)});
        t.addRow({"journal replays", withCommas(rs.replayedRecords)});
        t.addRow({"torn records dropped", withCommas(rs.tornRecords)});
        t.addRow({"idempotency memo hits", withCommas(rs.memoHits)});
        t.addRow({"checkpoints", withCommas(rs.checkpoints)});
    }
    if (plan) {
        uint64_t injected = plan->totalInjected();
        // Server-side consultations (BackendFail/BackendSlow/
        // ClientDisconnect) are also counted in stats.faultsInjected;
        // the plan total covers the device-side sites too.
        t.addRow({"faults injected", withCommas(injected)});
    }
    t.printAscii(std::cout);
}

void
report(const core::RhythmServer &server, const simt::Device &device,
       const des::EventQueue &queue, const platform::TitanPowerModel &pm,
       const fault::FaultPlan *plan = nullptr, bool robust = false,
       bench::Reporter *rep = nullptr,
       const simt::ProfileCache *cache = nullptr,
       const backend::RecoverableBackend *recovery = nullptr)
{
    const core::RhythmStats &stats = server.stats();
    const simt::Device::Stats dstats = device.stats();
    const double elapsed = des::toSeconds(queue.now());
    const double throughput =
        elapsed > 0 ? static_cast<double>(stats.responsesCompleted) /
                          elapsed
                    : 0.0;
    const double util = device.kernelUtilization();
    const double copy_util =
        elapsed > 0
            ? std::max(dstats.h2dBusySeconds, dstats.d2hBusySeconds) /
                  elapsed
            : 0.0;
    const double mem_util =
        elapsed > 0 ? static_cast<double>(dstats.kernelMemoryBytes) /
                          (device.config().memBandwidthGBs *
                           device.config().memoryEfficiency * 1e9 *
                           elapsed)
                    : 0.0;
    const double activity =
        pm.computeWeight * util +
        (1.0 - pm.computeWeight) * std::min(1.0, mem_util);
    const double dynamic_watts =
        pm.devicePeakWatts *
            (pm.deviceActiveFloor + (1 - pm.deviceActiveFloor) * activity) +
        pm.pcieWatts * std::min(1.0, copy_util);
    const double simd_eff =
        stats.processIssueSlots > 0
            ? stats.processLaneInstructions /
                  (stats.processIssueSlots * 32.0)
            : 0.0;

    TableWriter t({"metric", "value"});
    t.addRow({"requests completed",
              withCommas(stats.responsesCompleted)});
    t.addRow({"error responses", withCommas(stats.errorResponses)});
    t.addRow({"simulated time", formatDouble(elapsed * 1e3, 2) + " ms"});
    t.addRow({"throughput", humanCount(throughput) + "reqs/s"});
    t.addRow({"latency mean / p50 / p99",
              formatDouble(stats.latencyMs.mean(), 2) + " / " +
                  formatDouble(stats.latencyMs.median(), 2) + " / " +
                  formatDouble(stats.latencyMs.percentile(99), 2) +
                  " ms"});
    t.addRow({"latency breakdown (mean)",
              formatDouble(stats.formationMs.mean(), 2) +
                  " ms formation + " +
                  formatDouble(stats.pipelineMs.mean(), 2) +
                  " ms pipeline"});
    t.addRow({"cohorts launched", withCommas(stats.cohortsLaunched)});
    t.addRow({"cohort timeouts", withCommas(stats.cohortTimeouts)});
    t.addRow({"device utilization", formatDouble(util, 3)});
    t.addRow({"DRAM bandwidth utilization",
              formatDouble(std::min(1.0, mem_util), 3)});
    t.addRow({"PCIe engine utilization", formatDouble(copy_util, 3)});
    t.addRow({"process SIMD efficiency", formatDouble(simd_eff, 3)});
    t.addRow({"PCIe bytes",
              humanBytes(static_cast<double>(dstats.bytesToDevice +
                                             dstats.bytesToHost))});
    t.addRow({"response padding",
              humanBytes(static_cast<double>(stats.paddingBytes))});
    t.addRow({"host fallback requests",
              withCommas(stats.hostFallbackRequests)});
    t.addRow({"est. dynamic power",
              formatDouble(dynamic_watts, 1) + " W"});
    t.addRow({"est. reqs/Joule (wall)",
              formatDouble(throughput / (pm.idleWatts + dynamic_watts),
                           0)});
    t.addRow({"device memory pools",
              humanBytes(static_cast<double>(
                  server.memoryFootprintBytes()))});
    t.printAscii(std::cout);
    if (plan || robust)
        faultReport(stats, plan, recovery);

    // Deadline/adaptive section, printed (and emitted as metrics) only
    // when per-type deadline tracking is configured — default runs stay
    // byte-identical to the seed output.
    const core::RhythmConfig &scfg = server.config();
    bool deadlines_tracked = scfg.adaptiveBatching;
    for (const des::Time d : scfg.typeDeadlines)
        deadlines_tracked = deadlines_tracked || d != 0;
    if (deadlines_tracked) {
        const uint64_t att_total =
            stats.typedDeadlineHits + stats.typedDeadlineMisses;
        const double attainment =
            att_total ? static_cast<double>(stats.typedDeadlineHits) /
                            static_cast<double>(att_total)
                      : 0.0;
        TableWriter at({"deadline-aware batching", "value"});
        at.addRow({"deadline hits / misses",
                   withCommas(stats.typedDeadlineHits) + " / " +
                       withCommas(stats.typedDeadlineMisses)});
        at.addRow({"attainment", formatDouble(attainment, 4)});
        at.addRow({"early dispatches",
                   withCommas(stats.adaptiveEarlyDispatches)});
        at.addRow({"preemptions", withCommas(stats.adaptivePreemptions)});
        at.addRow({"admission sheds",
                   withCommas(stats.adaptiveAdmissionSheds)});
        at.printAscii(std::cout);
        if (rep) {
            rep->metric("deadline.hits",
                        static_cast<double>(stats.typedDeadlineHits));
            rep->metric("deadline.misses",
                        static_cast<double>(stats.typedDeadlineMisses));
            rep->metric("deadline.attainment", attainment);
            rep->metric("adaptive.early_dispatches",
                        static_cast<double>(
                            stats.adaptiveEarlyDispatches));
            rep->metric("adaptive.preemptions",
                        static_cast<double>(stats.adaptivePreemptions));
            rep->metric("adaptive.admission_sheds",
                        static_cast<double>(
                            stats.adaptiveAdmissionSheds));
        }
    }

    // Cohort-fusion section, printed (and emitted as metrics) only with
    // --fusion=on — default runs stay byte-identical to the seed
    // output.
    if (scfg.fusionEnabled) {
        const double simd_eff =
            stats.processIssueSlots > 0
                ? stats.processLaneInstructions /
                      (stats.processIssueSlots *
                       scfg.warpModel.warpWidth)
                : 0.0;
        TableWriter ft({"cohort fusion", "value"});
        ft.addRow({"fused launches", withCommas(stats.fusedLaunches)});
        ft.addRow({"cohorts fused", withCommas(stats.fusedCohorts)});
        ft.addRow({"warps saved", withCommas(stats.fusionSavedWarps)});
        ft.addRow({"padded lanes", withCommas(stats.paddedLanes)});
        ft.addRow({"process SIMD efficiency",
                   formatDouble(simd_eff, 4)});
        ft.printAscii(std::cout);
        if (rep) {
            rep->metric("fusion.fused_launches",
                        static_cast<double>(stats.fusedLaunches));
            rep->metric("fusion.fused_cohorts",
                        static_cast<double>(stats.fusedCohorts));
            rep->metric("fusion.saved_warps",
                        static_cast<double>(stats.fusionSavedWarps));
            rep->metric("fusion.padded_lanes",
                        static_cast<double>(stats.paddedLanes));
            rep->metric("fusion.simd_efficiency", simd_eff);
        }
    }

    // Human-readable cache summary (stdout only: the --json document
    // must stay byte-identical with the cache on or off, so these
    // numbers are deliberately NOT metrics — bench_sim_speedup emits
    // them in its own JSON instead).
    if (cache) {
        const simt::ProfileCache::Stats &cs = cache->stats();
        TableWriter ct({"profile cache", "value"});
        ct.addRow({"cross-launch hits", withCommas(cs.hits)});
        ct.addRow({"intra-launch hits", withCommas(cs.intraHits)});
        ct.addRow({"misses (simulated warps)", withCommas(cs.misses)});
        ct.addRow({"insertions", withCommas(cs.insertions)});
        ct.addRow({"evictions", withCommas(cs.evictions)});
        ct.addRow({"entries", withCommas(cache->size()) + " / " +
                                  withCommas(cache->capacity())});
        ct.addRow({"trace bytes not re-simulated",
                   humanBytes(static_cast<double>(cs.bytesSaved))});
        ct.printAscii(std::cout);
    }

    if (rep) {
        rep->metric("throughput", throughput);
        rep->metric("latency.mean_ms", stats.latencyMs.mean());
        rep->metric("latency.p50_ms", stats.latencyMs.median());
        rep->metric("latency.p99_ms", stats.latencyMs.percentile(99));
        rep->metric("device_utilization", util);
        rep->metric("pcie_utilization", copy_util);
        rep->metric("simd_efficiency", simd_eff);
        rep->metric("pcie_bytes",
                    static_cast<double>(dstats.bytesToDevice +
                                        dstats.bytesToHost));
        rep->metric("dynamic_watts", dynamic_watts);
        rep->metric("reqs_per_joule_wall",
                    throughput / (pm.idleWatts + dynamic_watts));
        // DES determinism fingerprints: the final clock, the event
        // count and the dispatch-order hash must be identical for any
        // --sim-threads value (the equivalence tests byte-compare the
        // whole document across thread counts). The hash is split into
        // 32-bit halves so each survives the double-typed metric value
        // exactly.
        rep->metric("des.clock_seconds", elapsed);
        rep->metric("des.events",
                    static_cast<double>(queue.dispatched()));
        rep->metric("des.order_hash_hi",
                    static_cast<double>(queue.orderHash() >> 32));
        rep->metric("des.order_hash_lo",
                    static_cast<double>(queue.orderHash() &
                                        0xffffffffull));
        // Per-SM accounting from the execution engine, in canonical SM
        // order — also thread-count-invariant.
        const simt::Engine &engine = device.engine();
        rep->metric("engine.launches",
                    static_cast<double>(engine.launches()));
        rep->metric("engine.warps", static_cast<double>(engine.warps()));
        const auto &sms = engine.smCounters();
        for (size_t s = 0; s < sms.size(); ++s) {
            char prefix[16];
            std::snprintf(prefix, sizeof prefix, "sm.%02zu.", s);
            rep->metric(std::string(prefix) + "warps",
                        static_cast<double>(sms[s].warps));
            rep->metric(std::string(prefix) + "issue_slots",
                        static_cast<double>(sms[s].stats.issueSlots));
            rep->metric(std::string(prefix) + "global_transactions",
                        static_cast<double>(
                            sms[s].stats.globalTransactions));
        }
        // The instrumentation counters/histograms ride along under an
        // "obs." prefix when recording was on for this run. Feature
        // meta-metrics (profile cache, recovery, watchdog, PCIe CRC)
        // are excluded: they differ between feature-on and feature-off
        // runs whose simulated outputs the equivalence gate
        // byte-compares.
        if (obs::global().enabled())
            rep->metricsFrom(
                obs::global().metrics(), "obs.",
                std::span<const std::string_view>(
                    obs::kBaselineExcludedPrefixes));
    }
}

/**
 * Fleet-mode report (DESIGN.md 6k): aggregate goodput plus a
 * per-device section. Every number is simulated state, so the JSON
 * document is byte-identical across --sim-threads and --profile-cache
 * settings exactly like the single-device report. The obs.* ride-along
 * uses the same baseline-excluded span; the flatten rule additionally
 * drops the per-device "dev<i>." namespaces from that gated set.
 */
void
fleetReport(core::Fleet &fleet, const des::EventQueue &queue,
            bench::Reporter *rep)
{
    const double elapsed = des::toSeconds(queue.now());
    const uint64_t responses = fleet.totalResponses();
    const double goodput =
        elapsed > 0 ? static_cast<double>(responses) / elapsed : 0.0;
    const double throughput =
        elapsed > 0 ? static_cast<double>(responses +
                                          fleet.totalErrors()) /
                          elapsed
                    : 0.0;
    const core::Fleet::Stats &fs = fleet.stats();

    TableWriter t({"fleet metric", "value"});
    t.addRow({"devices (alive / total)",
              std::to_string(fleet.aliveCount()) + " / " +
                  std::to_string(fleet.devices())});
    t.addRow({"requests completed", withCommas(responses)});
    t.addRow({"error responses", withCommas(fleet.totalErrors())});
    t.addRow({"requests shed (503)", withCommas(fleet.totalShed())});
    t.addRow({"reader drops", withCommas(fleet.totalReaderDrops())});
    t.addRow({"simulated time", formatDouble(elapsed * 1e3, 2) + " ms"});
    t.addRow({"goodput", humanCount(goodput) + "reqs/s"});
    t.addRow({"cohorts launched", withCommas(fleet.totalCohorts())});
    t.addRow({"cross-shard started / completed / rejected",
              withCommas(fs.crossStarted) + " / " +
                  withCommas(fs.crossCompleted) + " / " +
                  withCommas(fs.crossRejected)});
    if (fs.devicesKilled) {
        t.addRow({"devices killed", withCommas(fs.devicesKilled)});
        t.addRow({"sessions re-sharded",
                  withCommas(fs.sessionsResharded)});
        t.addRow({"cookie rewrites", withCommas(fs.rewrittenCookies)});
    }
    t.printAscii(std::cout);

    TableWriter d({"device", "responses", "errors", "shed", "cohorts",
                   "util", "p99 ms"});
    for (uint32_t i = 0; i < fleet.devices(); ++i) {
        const core::RhythmStats &s = fleet.server(i).stats();
        d.addRow({"dev" + std::to_string(i) +
                      (fleet.alive(i) ? "" : " (dead)"),
                  withCommas(s.responsesCompleted),
                  withCommas(s.errorResponses),
                  withCommas(s.requestsShed),
                  withCommas(s.cohortsLaunched),
                  formatDouble(fleet.device(i).kernelUtilization(), 3),
                  formatDouble(s.latencyMs.percentile(99), 2)});
    }
    d.printAscii(std::cout);

    if (!rep)
        return;
    rep->metric("throughput", throughput);
    rep->metric("goodput", goodput);
    rep->metric("fleet.devices", static_cast<double>(fleet.devices()));
    rep->metric("fleet.alive", static_cast<double>(fleet.aliveCount()));
    rep->metric("fleet.accepted",
                static_cast<double>(fleet.totalAccepted()));
    rep->metric("fleet.shed", static_cast<double>(fleet.totalShed()));
    rep->metric("fleet.reader_drops",
                static_cast<double>(fleet.totalReaderDrops()));
    rep->metric("fleet.cohorts",
                static_cast<double>(fleet.totalCohorts()));
    rep->metric("fleet.cross.started",
                static_cast<double>(fs.crossStarted));
    rep->metric("fleet.cross.completed",
                static_cast<double>(fs.crossCompleted));
    rep->metric("fleet.cross.rejected",
                static_cast<double>(fs.crossRejected));
    rep->metric("fleet.devices_killed",
                static_cast<double>(fs.devicesKilled));
    rep->metric("fleet.resharded_sessions",
                static_cast<double>(fs.sessionsResharded));
    rep->metric("fleet.reshard_drops",
                static_cast<double>(fs.reshardDrops));
    rep->metric("fleet.cookie_rewrites",
                static_cast<double>(fs.rewrittenCookies));
    rep->metric("des.clock_seconds", elapsed);
    rep->metric("des.events", static_cast<double>(queue.dispatched()));
    rep->metric("des.order_hash_hi",
                static_cast<double>(queue.orderHash() >> 32));
    rep->metric("des.order_hash_lo",
                static_cast<double>(queue.orderHash() & 0xffffffffull));
    for (uint32_t i = 0; i < fleet.devices(); ++i) {
        char prefix[16];
        std::snprintf(prefix, sizeof prefix, "dev%u.", i);
        const std::string p(prefix);
        const core::RhythmStats &s = fleet.server(i).stats();
        rep->metric(p + "responses",
                    static_cast<double>(s.responsesCompleted));
        rep->metric(p + "errors",
                    static_cast<double>(s.errorResponses));
        rep->metric(p + "shed", static_cast<double>(s.requestsShed));
        rep->metric(p + "reader_drops",
                    static_cast<double>(s.readerDrops));
        rep->metric(p + "cohorts",
                    static_cast<double>(s.cohortsLaunched));
        rep->metric(p + "device_utilization",
                    fleet.device(i).kernelUtilization());
        rep->metric(p + "latency.p99_ms", s.latencyMs.percentile(99));
    }
    if (obs::global().enabled())
        rep->metricsFrom(obs::global().metrics(), "obs.",
                         std::span<const std::string_view>(
                             obs::kBaselineExcludedPrefixes));
}

/**
 * Order-insensitive fingerprint of the full response stream.
 *
 * Each response hashes independently (FNV-1a over the client id, the
 * length and the bytes) and the per-response digests combine with a
 * wrapping sum, so the fingerprint is invariant to completion order
 * but sensitive to any byte of any response. The equivalence gates
 * compare it across --overlap=on/off and --sim-threads values, whose
 * host-side callback order may legitimately differ while the simulated
 * responses must not.
 */
struct ResponseDigest
{
    std::string path; //!< Output file; empty = disabled.
    uint64_t sum = 0;
    uint64_t count = 0;

    void add(uint64_t client_id, std::string_view response)
    {
        util::Fnv1a64 h;
        h.update(client_id);
        h.update(response.size());
        uint64_t word = 0;
        int shift = 0;
        for (const char c : response) {
            word |= static_cast<uint64_t>(
                        static_cast<unsigned char>(c))
                    << shift;
            shift += 8;
            if (shift == 64) {
                h.update(word);
                word = 0;
                shift = 0;
            }
        }
        if (shift > 0)
            h.update(word);
        sum += h.digest();
        ++count;
    }

    /** Attaches the digest to a server when armed. */
    void attach(core::RhythmServer &server)
    {
        if (path.empty())
            return;
        server.setResponseCallback(
            [this](uint64_t client_id, std::string_view response,
                   des::Time) { add(client_id, response); });
    }

    /** Writes "<hex sum> <count>"; returns false on I/O failure. */
    bool write() const
    {
        if (path.empty())
            return true;
        std::ofstream out(path);
        if (out) {
            char line[48];
            std::snprintf(line, sizeof line, "%016llx %llu\n",
                          static_cast<unsigned long long>(sum),
                          static_cast<unsigned long long>(count));
            out << line;
        }
        if (!out.good()) {
            std::cerr << "error: cannot write --digest-out file: "
                      << path << "\n";
            return false;
        }
        return true;
    }
};

/**
 * Writes the trace, JSON and digest artifacts (no-ops without the
 * flags) and turns observability back off. Returns the process exit
 * code.
 */
int
finish(const bench::Reporter &rep, const std::string &trace_path,
       const ResponseDigest &digest)
{
    int rc = 0;
    if (!digest.write())
        rc = 1;
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (out) {
            obs::global().tracer().writeChromeTrace(out);
            out << "\n";
        }
        if (!out.good()) {
            std::cerr << "error: cannot write --trace-out file: "
                      << trace_path << "\n";
            rc = 1;
        }
    }
    if (!rep.write())
        rc = 1;
    obs::global().disable();
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    if (!flags.parse(argc, argv))
        return usage(flags.error());
    if (flags.has("help"))
        return usage("");
    std::vector<std::string> known =
        {"workload", "platform", "type", "cohort-size", "cohorts",
         "contexts", "timeout-ms", "lane-sample", "users", "docs",
         "sms", "mem-gbs", "pcie-gbs", "queues", "transpose",
         "padding", "seed", "help", "fault-seed", "backend-fail",
         "backend-slow", "backend-slow-ms", "pcie-corrupt",
         "pcie-degrade", "pcie-degrade-factor", "stall", "stall-ms",
         "disconnect", "crash", "torn", "hang", "hang-ms",
         "watchdog-ms", "pcie-crc", "recovery",
         "checkpoint-interval", "retry-budget", "backoff-us",
         "deadline-ms", "shed-backlog", "shed-p99-ms", "json",
         "trace-out", "sim-threads", "profile-cache",
         "profile-cache-entries", "overlap", "copy-engines",
         "copy-chunk-kb", "digest-out", "batching",
         "deadline-default-ms", "slack-safety", "adaptive-scan-us",
         "admission", "arrival", "arrival-rate", "arrival-seed",
         "flash-mult", "flash-start-ms", "flash-dur-ms",
         "diurnal-period-ms", "diurnal-trough", "fusion",
         "fusion-threshold", "fusion-max-cohorts", "fingerprint-alpha",
         "fingerprint-lanes", "devices", "balance", "shard-seed",
         "cross-shard"};
    // Per-type deadlines are open vocabulary (--deadline-ms-<type>);
    // BatchingFlags validates the slug against the service's types.
    for (const std::string &name : flags.names()) {
        if (name.rfind("deadline-ms-", 0) == 0)
            known.push_back(name);
    }
    if (!flags.allowOnly(known))
        return usage(flags.error());

    // Host-side parallelism of the execution engine. Applied before any
    // simulation object exists; N changes wall-clock time only — every
    // simulated output is byte-identical by the engine's determinism
    // contract, so the value is deliberately absent from the --json
    // config section.
    util::setSimThreads(
        static_cast<unsigned>(flags.getU64("sim-threads", 1)));

    // ---- Platform ----------------------------------------------------
    const std::string preset = flags.getString("platform", "titanB");
    platform::TitanVariant variant;
    if (preset == "titanA")
        variant = platform::titanA();
    else if (preset == "titanB")
        variant = platform::titanB();
    else if (preset == "titanC")
        variant = platform::titanC();
    else
        return usage("unknown platform: " + preset);

    variant.device.numSms = static_cast<int>(
        flags.getU64("sms", static_cast<uint64_t>(variant.device.numSms)));
    variant.device.memBandwidthGBs =
        flags.getDouble("mem-gbs", variant.device.memBandwidthGBs);
    variant.device.pcieBandwidthGBs =
        flags.getDouble("pcie-gbs", variant.device.pcieBandwidthGBs);
    variant.device.hardwareQueues = static_cast<int>(flags.getU64(
        "queues", static_cast<uint64_t>(variant.device.hardwareQueues)));
    if (flags.getBool("pcie-crc", false))
        variant.device.pcieCrcEnabled = true;

    // Transfer/compute overlap family (DESIGN.md 6h). Parsed with the
    // shared bench helper so the bench binaries and the driver agree on
    // the --overlap=on implied defaults.
    const std::string overlap_mode = flags.getString("overlap", "off");
    if (overlap_mode != "on" && overlap_mode != "off")
        return usage("--overlap must be on or off");
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    // An explicit --copy-engines must be positive; OverlapFlags treats
    // non-positive values as "use the mode default", which would
    // silently ignore a typo'd 0 here.
    const std::string engines_raw = flags.getString("copy-engines", "");
    if (!engines_raw.empty() && std::atoi(engines_raw.c_str()) < 1)
        return usage("--copy-engines must be >= 1");
    overlap.apply(variant.device);

    // Deadline-aware batching + open-loop arrival families (DESIGN.md
    // 6i), parsed with the shared bench helpers so the bench binaries
    // and the driver agree on names and defaults. The batching policy
    // is applied per workload branch (per-type deadline slugs resolve
    // against the service's type names).
    const bench::BatchingFlags batching =
        bench::BatchingFlags::parse(argc, argv);
    const bench::ArrivalFlags arrival =
        bench::ArrivalFlags::parse(argc, argv);
    // Cross-type cohort fusion family (DESIGN.md 6j), same shared-helper
    // arrangement.
    const bench::FusionFlags fusion = bench::FusionFlags::parse(argc, argv);
    // Multi-device sharding family (DESIGN.md 6k).
    const bench::ShardingFlags sharding =
        bench::ShardingFlags::parse(argc, argv);

    core::RhythmConfig cfg = variant.server;
    overlap.apply(cfg);
    fusion.apply(cfg);
    cfg.cohortSize =
        static_cast<uint32_t>(flags.getU64("cohort-size", 4096));
    // Default to 16 contexts: a mixed workload needs roughly one per
    // request type in flight (isolation runs are fine with fewer).
    cfg.cohortContexts =
        static_cast<uint32_t>(flags.getU64("contexts", 16));
    cfg.cohortTimeout =
        des::fromSeconds(flags.getDouble("timeout-ms", 2.0) / 1e3);
    cfg.laneSample =
        static_cast<uint32_t>(flags.getU64("lane-sample", 128));
    cfg.transposeBuffers = flags.getBool("transpose", true);
    cfg.padResponses = flags.getBool("padding", true);

    // ---- Robustness knobs (all off by default) -----------------------
    cfg.backendRetryBudget =
        static_cast<uint32_t>(flags.getU64("retry-budget", 0));
    cfg.retryBackoffBase =
        des::fromSeconds(flags.getDouble("backoff-us", 50.0) / 1e6);
    cfg.requestDeadline =
        des::fromSeconds(flags.getDouble("deadline-ms", 0.0) / 1e3);
    cfg.shedBacklogLimit =
        static_cast<uint32_t>(flags.getU64("shed-backlog", 0));
    cfg.shedLatencySlo =
        des::fromSeconds(flags.getDouble("shed-p99-ms", 0.0) / 1e3);
    cfg.watchdogTimeout =
        des::fromSeconds(flags.getDouble("watchdog-ms", 0.0) / 1e3);

    fault::FaultConfig fcfg;
    fcfg.seed = flags.getU64("fault-seed", 1);
    fcfg.at(fault::Site::BackendFail).probability =
        flags.getDouble("backend-fail", 0.0);
    fcfg.at(fault::Site::BackendSlow).probability =
        flags.getDouble("backend-slow", 0.0);
    fcfg.at(fault::Site::BackendSlow).meanDelay =
        des::fromSeconds(flags.getDouble("backend-slow-ms", 5.0) / 1e3);
    fcfg.at(fault::Site::PcieCorrupt).probability =
        flags.getDouble("pcie-corrupt", 0.0);
    fcfg.at(fault::Site::PcieDegrade).probability =
        flags.getDouble("pcie-degrade", 0.0);
    fcfg.at(fault::Site::PcieDegrade).factor =
        flags.getDouble("pcie-degrade-factor", 2.0);
    fcfg.at(fault::Site::StreamStall).probability =
        flags.getDouble("stall", 0.0);
    fcfg.at(fault::Site::StreamStall).meanDelay =
        des::fromSeconds(flags.getDouble("stall-ms", 1.0) / 1e3);
    fcfg.at(fault::Site::ClientDisconnect).probability =
        flags.getDouble("disconnect", 0.0);
    fcfg.at(fault::Site::BackendCrash).probability =
        flags.getDouble("crash", 0.0);
    fcfg.at(fault::Site::JournalTorn).probability =
        flags.getDouble("torn", 0.0);
    fcfg.at(fault::Site::KernelHang).probability =
        flags.getDouble("hang", 0.0);
    fcfg.at(fault::Site::KernelHang).meanDelay =
        des::fromSeconds(flags.getDouble("hang-ms", 0.0) / 1e3);
    for (const auto &site : fcfg.sites) {
        if (site.probability < 0.0 || site.probability > 1.0)
            return usage("fault probabilities must be in [0, 1]");
        if (site.factor < 1.0)
            return usage("--pcie-degrade-factor must be >= 1");
    }
    const bool faults_on = !fcfg.allQuiet();
    const bool recovery_on = flags.getBool("recovery", false);
    const bool robust = faults_on || cfg.backendRetryBudget ||
                        cfg.requestDeadline || cfg.shedBacklogLimit ||
                        cfg.shedLatencySlo || cfg.watchdogTimeout ||
                        recovery_on;

    const uint64_t seed = flags.getU64("seed", 42);
    const uint32_t cohorts =
        static_cast<uint32_t>(flags.getU64("cohorts", 10));
    const uint64_t total =
        static_cast<uint64_t>(cohorts) * cfg.cohortSize;

    // ---- Warp profile cache (host-side memoization, off by default) --
    const std::string pc_mode = flags.getString("profile-cache", "off");
    if (pc_mode != "on" && pc_mode != "off")
        return usage("--profile-cache must be on or off");
    const bool pc_on = pc_mode == "on";
    const uint64_t pc_entries =
        flags.getU64("profile-cache-entries", 4096);
    if (pc_on && pc_entries == 0)
        return usage("--profile-cache-entries must be >= 1");
    if (pc_on)
        cfg.traceTemplateCacheEntries =
            static_cast<uint32_t>(pc_entries);
    // Outlives every workload branch's device; attached only when on.
    simt::ProfileCache profile_cache(std::max<uint64_t>(pc_entries, 1));

    // ---- Observability -----------------------------------------------
    bench::Reporter json_report("rhythm_sim", argc, argv);
    const std::string trace_path = flags.getString("trace-out", "");
    const bool observe = json_report.enabled() || !trace_path.empty();
    json_report.config("workload", flags.getString("workload", "banking"));
    json_report.config("platform", preset);
    json_report.config("cohorts", static_cast<double>(cohorts));
    json_report.config("cohort_size", static_cast<double>(cfg.cohortSize));
    json_report.config("seed", static_cast<double>(seed));
    overlap.recordConfig(json_report);
    batching.recordConfig(json_report);
    arrival.recordConfig(json_report);
    fusion.recordConfig(json_report);
    sharding.recordConfig(json_report);

    ResponseDigest digest;
    digest.path = flags.getString("digest-out", "");

    std::cout << "rhythm_sim: " << flags.getString("workload", "banking")
              << " on " << preset << " (" << variant.device.numSms
              << " SMs, " << variant.device.memBandwidthGBs << " GB/s, "
              << cohorts << " cohorts x " << cfg.cohortSize << ")\n";

    // ---- Workloads -----------------------------------------------------
    const std::string workload = flags.getString("workload", "banking");
    if (arrival.open() && workload != "banking")
        return usage("--arrival supports the banking workload only");
    if (workload == "banking") {
        const uint64_t users = flags.getU64("users", 2000);
        backend::BankDb db(users, seed);
        specweb::WorkloadGenerator gen(db, seed * 31 + 7);

        std::optional<specweb::RequestType> only;
        const std::string type_name = flags.getString("type", "");
        if (!type_name.empty()) {
            for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
                if (specweb::typeTable()[i].name == type_name)
                    only = specweb::typeTable()[i].type;
            }
            if (!only)
                return usage("unknown banking type: " + type_name);
            if (*only == specweb::RequestType::Login ||
                *only == specweb::RequestType::Logout)
                cfg.sessionNodesPerBucket = static_cast<uint32_t>(
                    3 * total / std::min<uint64_t>(users, cfg.cohortSize) +
                    16);
        }

        // ---- Multi-device fleet (DESIGN.md 6k) -----------------------
        // Sharded serving needs open-loop arrivals (a closed-loop pull
        // source cannot be routed) and the mixed type distribution.
        // --devices=1 deliberately takes the single-device path below,
        // so the default output stays byte-identical to the seed tree.
        if (sharding.fleet()) {
            if (!arrival.open())
                return usage(
                    "--devices > 1 requires an open-loop --arrival");
            if (only)
                return usage("--type isolation is single-device only");

            des::EventQueue queue;
            if (observe)
                obs::global().enable(queue);
            core::FleetConfig fc = sharding.toFleetConfig();
            fc.recovery = recovery_on;
            fc.checkpointInterval =
                flags.getU64("checkpoint-interval", 4096);
            // The batching policy resolves per-type deadline slugs
            // against a service instance; a front-end throwaway works
            // because every shard shares this one RhythmConfig.
            core::BankingService slug_service(db);
            batching.apply(cfg, slug_service);
            core::Fleet fleet(queue, variant.device, cfg, fc, users,
                              seed);
            specweb::StaticContent content(32, seed);
            fleet.setStaticContent(&content);
            if (!digest.path.empty())
                fleet.setResponseCallback(
                    [&digest](uint64_t client_id,
                              std::string_view response, des::Time) {
                        digest.add(client_id, response);
                    });
            // Per-device profile caches: one shared cache would leak
            // warp profiles across shards.
            std::vector<std::unique_ptr<simt::ProfileCache>> caches;
            fault::FaultPlan plan(fcfg);
            for (uint32_t i = 0; i < fleet.devices(); ++i) {
                if (pc_on) {
                    caches.push_back(
                        std::make_unique<simt::ProfileCache>(
                            pc_entries));
                    fleet.device(i).engine().setProfileCache(
                        caches.back().get());
                }
                if (faults_on) {
                    fleet.server(i).setFaultPlan(&plan);
                    fault::installDeviceFaults(fleet.device(i), plan,
                                               queue);
                }
            }

            const uint64_t per_shard = std::max<uint64_t>(
                std::min<uint64_t>(total, 8192) / fc.devices, 1);
            const auto &pools =
                fleet.populateSessions(per_shard, users);
            // Round-robin interleave of the per-shard pools so
            // consecutive arrivals spread across the whole fleet.
            std::vector<std::pair<uint64_t, uint64_t>> flat;
            size_t longest = 0;
            for (const auto &p : pools)
                longest = std::max(longest, p.size());
            for (size_t k = 0; k < longest; ++k)
                for (const auto &p : pools)
                    if (k < p.size())
                        flat.push_back(p[k]);
            if (flat.empty())
                return usage("no sessions could be populated");

            const uint64_t cross_every =
                sharding.crossShard > 0
                    ? std::max<uint64_t>(
                          1, static_cast<uint64_t>(
                                 1.0 / sharding.crossShard + 0.5))
                    : 0;

            uint64_t issued = 0;
            std::optional<net::ArrivalProcess> arrivals;
            std::function<void()> arrive;
            arrivals.emplace(arrival.config);
            arrive = [&]() {
                if (issued >= total)
                    return;
                specweb::RequestType type;
                do {
                    type = gen.sampleType();
                } while (type == specweb::RequestType::Login ||
                         type == specweb::RequestType::Logout);
                const auto &[sid, user] = flat[issued % flat.size()];
                specweb::GeneratedRequest req =
                    gen.generate(type, user, sid);
                ++issued;
                fleet.injectRequest(std::move(req.raw), issued, user,
                                    static_cast<uint32_t>(type));
                if (cross_every && issued % cross_every == 0)
                    fleet.beginCrossShardTransfer(
                        gen.sampleUser(), gen.sampleUser(),
                        100 + static_cast<int64_t>(issued % 32) * 25);
                if (issued < total)
                    queue.scheduleAfter(arrivals->nextGap(), arrive);
            };
            queue.scheduleAfter(arrivals->nextGap(), arrive);
            queue.run();
            fleetReport(fleet, queue, &json_report);
            return finish(json_report, trace_path, digest);
        }

        des::EventQueue queue;
        if (observe)
            obs::global().enable(queue);
        simt::Device device(queue, variant.device);
        if (pc_on)
            device.engine().setProfileCache(&profile_cache);
        core::BankingService service(db);
        batching.apply(cfg, service);
        core::RhythmServer server(queue, device, service, cfg);
        specweb::StaticContent content(32, seed);
        server.setStaticContent(&content);
        digest.attach(server);
        fault::FaultPlan plan(fcfg);
        if (faults_on) {
            server.setFaultPlan(&plan);
            fault::installDeviceFaults(device, plan, queue);
        }

        // Logout consumes one session per request; other types reuse a
        // pool.
        auto sessions = server.sessions().populate(
            only && *only == specweb::RequestType::Logout
                ? total
                : std::min<uint64_t>(total, 8192),
            users);
        // Recovery wraps the populated baseline: the constructor takes
        // the first checkpoint, so it must run after populate().
        std::unique_ptr<backend::RecoverableBackend> recoverable;
        if (recovery_on) {
            backend::RecoveryConfig rcfg;
            rcfg.checkpointInterval =
                flags.getU64("checkpoint-interval", 4096);
            recoverable = std::make_unique<backend::RecoverableBackend>(
                service.backendService(), db, rcfg);
            if (faults_on)
                recoverable->setFaultPlan(
                    &plan, [&queue]() { return queue.now(); });
            core::attachSessionRecovery(*recoverable, server.sessions());
            service.setRecovery(recoverable.get());
        }
        uint64_t issued = 0;
        auto next_request = [&]() -> std::string {
            specweb::GeneratedRequest req;
            specweb::RequestType type;
            if (only) {
                type = *only;
            } else {
                // Mixed mode models the browsing steady state: logins
                // and logouts churn the reusable session pool, so run
                // them isolated via --type instead.
                do {
                    type = gen.sampleType();
                } while (type == specweb::RequestType::Login ||
                         type == specweb::RequestType::Logout);
            }
            if (type == specweb::RequestType::Login) {
                req = gen.generate(type, gen.sampleUser(), 0);
            } else {
                const auto &[sid, user] =
                    sessions[issued % sessions.size()];
                req = gen.generate(type, user, sid);
            }
            ++issued;
            return std::move(req.raw);
        };
        // Closed loop (the historical pull source) or an open-loop
        // arrival process pushing on its own schedule; both must
        // outlive queue.run().
        std::optional<net::ArrivalProcess> arrivals;
        std::function<void()> arrive;
        if (!arrival.open()) {
            server.start([&]() -> std::optional<std::string> {
                if (issued >= total)
                    return std::nullopt;
                return next_request();
            });
        } else {
            arrivals.emplace(arrival.config);
            arrive = [&]() {
                if (issued >= total)
                    return;
                const uint64_t client_id = issued + 1;
                // injectRequest == false is a reader drop: an
                // open-loop client does not retry (counted in
                // RhythmStats::readerDrops).
                server.injectRequest(next_request(), client_id);
                if (issued < total)
                    queue.scheduleAfter(arrivals->nextGap(), arrive);
            };
            queue.scheduleAfter(arrivals->nextGap(), arrive);
        }
        queue.run();
        report(server, device, queue, variant.power,
               faults_on ? &plan : nullptr, robust, &json_report,
               pc_on ? &profile_cache : nullptr, recoverable.get());
        return finish(json_report, trace_path, digest);
    }

    if (recovery_on)
        return usage("--recovery supports the banking workload only");

    if (workload == "chat") {
        chat::RoomStore store(256, 40, seed);
        chat::ChatGenerator gen(store, seed * 13 + 5);

        des::EventQueue queue;
        if (observe)
            obs::global().enable(queue);
        simt::Device device(queue, variant.device);
        if (pc_on)
            device.engine().setProfileCache(&profile_cache);
        chat::ChatService service(store);
        batching.apply(cfg, service);
        core::RhythmServer server(queue, device, service, cfg);
        digest.attach(server);
        fault::FaultPlan plan(fcfg);
        if (faults_on) {
            server.setFaultPlan(&plan);
            fault::installDeviceFaults(device, plan, queue);
        }

        uint64_t issued = 0;
        server.start([&]() -> std::optional<std::string> {
            if (issued >= total)
                return std::nullopt;
            ++issued;
            chat::PageType type;
            return gen.next(type);
        });
        queue.run();
        report(server, device, queue, variant.power,
               faults_on ? &plan : nullptr, robust, &json_report,
               pc_on ? &profile_cache : nullptr);
        std::cout << "messages posted during run: "
                  << withCommas(store.totalPosted() - 256ull * 40)
                  << "\n";
        return finish(json_report, trace_path, digest);
    }

    if (workload == "search") {
        const uint32_t docs =
            static_cast<uint32_t>(flags.getU64("docs", 4000));
        search::Corpus corpus(docs, 4096, seed);
        search::InvertedIndex index(corpus);
        search::QueryGenerator gen(corpus, seed * 17 + 3);

        des::EventQueue queue;
        if (observe)
            obs::global().enable(queue);
        simt::Device device(queue, variant.device);
        if (pc_on)
            device.engine().setProfileCache(&profile_cache);
        search::SearchService service(index);
        batching.apply(cfg, service);
        core::RhythmServer server(queue, device, service, cfg);
        digest.attach(server);
        fault::FaultPlan plan(fcfg);
        if (faults_on) {
            server.setFaultPlan(&plan);
            fault::installDeviceFaults(device, plan, queue);
        }

        uint64_t issued = 0;
        server.start([&]() -> std::optional<std::string> {
            if (issued >= total)
                return std::nullopt;
            ++issued;
            return gen.next().raw;
        });
        queue.run();
        report(server, device, queue, variant.power,
               faults_on ? &plan : nullptr, robust, &json_report,
               pc_on ? &profile_cache : nullptr);
        return finish(json_report, trace_path, digest);
    }

    return usage("unknown workload: " + workload);
}
