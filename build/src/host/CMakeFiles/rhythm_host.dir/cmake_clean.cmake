file(REMOVE_RECURSE
  "CMakeFiles/rhythm_host.dir/server.cc.o"
  "CMakeFiles/rhythm_host.dir/server.cc.o.d"
  "librhythm_host.a"
  "librhythm_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
