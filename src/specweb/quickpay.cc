#include "specweb/quickpay.hh"

#include "backend/protocol.hh"
#include "specweb/banking.hh"
#include "specweb/html.hh"
#include "util/strings.hh"

namespace rhythm::specweb {
namespace {

namespace bp = rhythm::backend;

/** Block ids for quick pay (host-only; base beyond the device apps). */
enum QuickPayBlock : uint32_t {
    kQpValidate = 6000,
    kQpPayment = 6001,
    kQpRender = 6002,
};

} // namespace

std::string
serveQuickPay(const http::Request &request,
              backend::BackendService &backend, SessionProvider &sessions,
              simt::TraceRecorder &rec)
{
    StringResponseWriter writer(rec);
    HandlerContext ctx;
    ctx.request = &request;
    ctx.rec = &rec;
    ctx.out = &writer;
    ctx.sessions = &sessions;

    rec.block(kQpValidate, 400);
    const uint64_t user = request.sessionId
                              ? sessions.lookup(request.sessionId, rec)
                              : 0;
    if (user == 0) {
        emitErrorPage(ctx, "session invalid or expired");
        return writer.str();
    }

    auto payees = split(request.param("payees"), ',');
    auto amounts = split(request.param("amounts"), ',');
    if (payees.empty() || payees.size() != amounts.size() ||
        payees.size() > 16) {
        emitErrorPage(ctx, "malformed quick pay submission");
        return writer.str();
    }

    // Variable number of backend round trips — one per payment. This is
    // what makes quick pay unsuitable for a fixed cohort stage pipeline.
    struct Outcome
    {
        std::string payee;
        std::string amount;
        std::string confirmation; //!< empty = rejected
    };
    std::vector<Outcome> outcomes;
    for (size_t i = 0; i < payees.size(); ++i) {
        rec.block(kQpPayment, 300);
        uint64_t payee = 0, cents = 0;
        Outcome outcome;
        outcome.payee = std::string(payees[i]);
        outcome.amount = std::string(amounts[i]);
        if (parseU64(trim(payees[i]), payee) &&
            parseU64(trim(amounts[i]), cents) && cents > 0) {
            bp::BackendRequest breq;
            breq.op = bp::Op::PayBill;
            breq.userId = user;
            breq.args = {std::to_string(payee), std::to_string(cents),
                         "18160"};
            const std::string resp =
                backend.execute(breq.serialize(), rec);
            if (bp::response::isOk(resp)) {
                auto records =
                    bp::response::records(bp::response::payload(resp));
                if (!records.empty())
                    outcome.confirmation = std::string(records[0]);
            }
        }
        outcomes.push_back(std::move(outcome));
    }

    const size_t cl = html::beginResponse(writer);
    const size_t header_end = writer.size();
    html::pageHead(writer, "Quick Pay Results");
    html::pageNav(writer, "customer");
    writer.appendStatic(kQpRender,
                        "<h2>Quick Pay Results</h2>\n<p>Each payment "
                        "below was processed individually; rejected "
                        "payments leave your balance unchanged.</p>\n");
    html::tableOpen(writer, {"Payee", "Amount", "Status"});
    for (const Outcome &o : outcomes) {
        writer.appendStatic(kQpRender, "<tr><td>payee ");
        writer.appendDynamic(kQpRender, o.payee);
        writer.appendStatic(kQpRender, "</td><td>");
        writer.appendDynamic(kQpRender, o.amount);
        writer.appendStatic(kQpRender, "</td><td>");
        if (o.confirmation.empty()) {
            writer.appendStatic(kQpRender, "rejected");
        } else {
            writer.appendStatic(kQpRender, "confirmation ");
            writer.appendDynamic(kQpRender, o.confirmation);
        }
        writer.appendStatic(kQpRender, "</td></tr>\n");
    }
    html::tableClose(writer);
    html::fillerParagraphs(writer, 4);
    writer.appendStatic(kQpRender, "<!-- page:ok -->\n");
    html::pageFooter(writer);
    html::finishResponse(writer, cl, header_end);
    return writer.str();
}

} // namespace rhythm::specweb
