/**
 * @file
 * Section 6.3: system resource requirements — network bandwidth needed
 * to sustain each Titan platform's throughput (paper: 67 / 258 / 517
 * Gbps raw for A/B/C, ~100 Gbps with 80% HTML compression for Titan C)
 * and device memory capacity (16M sessions = 640 MB, 64M-slot array =
 * 2.5 GB, pools linear in cohort size, 8 cohorts of 4096 on a 6 GB
 * Titan).
 */

#include <iostream>

#include "backend/protocol.hh"
#include "bench/common.hh"
#include "platform/measure.hh"
#include "platform/titan.hh"
#include "rhythm/banking_service.hh"
#include "rhythm/session_array.hh"

int
main(int argc, char **argv)
{
    using namespace rhythm;
    bench::Reporter report("sec63_resources", argc, argv);
    bench::banner("Section 6.3: system resource requirements",
                  "Section 6.3 (network bandwidth, memory capacity)");

    platform::WorkloadMeasurement wm =
        platform::measureWorkload(60, 2000, 7);

    // Per-request network bytes: request + response content + backend
    // round trips (remote backend traffic is network traffic for the
    // front-end node). Matches the paper's arithmetic: ~21 KB/request.
    double backend_stages = 0.0, mix = 0.0;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        backend_stages += specweb::typeTable()[i].mixPercent *
                          specweb::typeTable()[i].backendRequests;
        mix += specweb::typeTable()[i].mixPercent;
    }
    backend_stages /= mix;
    const double request_bytes = 512.0;
    const double per_request_bytes =
        request_bytes + wm.mixWeightedResponseBytes +
        backend_stages *
            (backend::kRequestSlotBytes + backend::kResponseSlotBytes);

    platform::IsolatedRunOptions opts;
    opts.cohorts = 10;
    opts.users = 2000;
    opts.laneSample = 128;
    const bench::FaultFlags faults = bench::FaultFlags::parse(argc, argv);
    faults.apply(opts);
    faults.recordConfig(report);
    const bench::OverlapFlags overlap =
        bench::OverlapFlags::parse(argc, argv);
    overlap.apply(opts);
    overlap.recordConfig(report);

    TableWriter net({"platform", "KReqs/s", "network Gbps (paper)",
                     "with 80% HTML compression Gbps"});
    const double paper_gbps[3] = {67, 258, 517};
    int row = 0;
    for (const auto &variant :
         {platform::titanA(), platform::titanB(), platform::titanC()}) {
        platform::TitanWorkloadResult r =
            platform::evaluateTitan(variant, opts);
        const double gbps =
            r.throughput * per_request_bytes * 8.0 / 1e9;
        // Compression applies to the HTML response bytes only.
        const double compressed_gbps =
            r.throughput *
            (per_request_bytes - 0.8 * wm.mixWeightedResponseBytes) *
            8.0 / 1e9;
        net.addRow({r.name, bench::fmt(r.throughput / 1e3, 0),
                    bench::withRef(gbps, paper_gbps[row], 0),
                    bench::fmt(compressed_gbps, 0)});
        report.metric(bench::slug(r.name) + ".network_gbps", gbps);
        report.metric(bench::slug(r.name) + ".throughput", r.throughput);
        ++row;
    }
    net.printAscii(std::cout);
    std::cout << "Per-request network bytes (measured): "
              << bench::fmt(per_request_bytes / 1024.0, 1)
              << " KB (paper arithmetic: ~21 KB).\n";

    // ---- Memory capacity ---------------------------------------------
    TableWriter mem({"structure", "configuration", "bytes",
                     "paper reference"});
    core::SessionArray live(4096, 4096); // 16M nodes
    mem.addRow({"session array (16M live sessions)", "16M x 40 B",
                humanBytes(static_cast<double>(live.footprintBytes())),
                "640 MB"});
    core::SessionArray sized(4096, 16384); // 64M nodes
    mem.addRow({"session array (64M slots, 25% collision)",
                "64M x 40 B",
                humanBytes(static_cast<double>(sized.footprintBytes())),
                "2.5 GB"});

    des::EventQueue queue;
    simt::Device device(queue, simt::DeviceConfig{});
    backend::BankDb db(10, 1);
    platform::TitanVariant b = platform::titanB();
    core::BankingService service(db);
    core::RhythmServer server(queue, device, service, b.server);
    mem.addRow({"preallocated pipeline pools",
                std::to_string(b.server.cohortContexts) + " cohorts x " +
                    std::to_string(b.server.cohortSize) + " reqs",
                humanBytes(static_cast<double>(
                    server.memoryFootprintBytes() -
                    server.sessions().footprintBytes())),
                "fits 6 GB GTX Titan with 8 cohorts in flight"});
    mem.printAscii(std::cout);

    const double total =
        static_cast<double>(sized.footprintBytes()) +
        static_cast<double>(server.memoryFootprintBytes() -
                            server.sessions().footprintBytes());
    std::cout << "Total (64M-slot sessions + pools): "
              << humanBytes(total) << " of "
              << humanBytes(6.0 * (1ull << 30))
              << " device memory (paper: limited to 8 inflight cohorts "
                 "of 4096).\n";
    report.config("cohorts", opts.cohorts);
    report.config("users", opts.users);
    report.metric("per_request_network_bytes", per_request_bytes);
    report.metric("total_device_memory_bytes", total);
    if (!report.write())
        return 1;
    return 0;
}
