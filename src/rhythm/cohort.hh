/**
 * @file
 * Cohort contexts and the cohort pool (paper Section 3.1, "Cohort
 * Management").
 *
 * A cohort context tracks one batch of same-type requests through the
 * pipeline. Contexts move through the FSM
 *
 *     Free → PartiallyFull → Full → Busy → Free
 *
 * (a timeout may launch a PartiallyFull cohort directly to Busy). The
 * pool owns a fixed set of contexts — statically allocated, as in the
 * paper, to avoid allocation and synchronization in the event loop — and
 * the pipeline stalls (structural hazard) when no context is Free.
 */

#ifndef RHYTHM_RHYTHM_COHORT_HH
#define RHYTHM_RHYTHM_COHORT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/time.hh"
#include "http/http.hh"


namespace rhythm::core {

/** Lifecycle states of a cohort context. */
enum class CohortState : uint8_t {
    Free,          //!< Available for a new cohort.
    PartiallyFull, //!< Accumulating requests.
    Full,          //!< At capacity, awaiting dispatch.
    Busy,          //!< Executing in the pipeline.
};

/** Returns a printable state name. */
std::string_view cohortStateName(CohortState state);

/** One request riding in a cohort. */
struct CohortEntry
{
    /** Sentinel: the entry's cohort type has not been resolved yet. */
    static constexpr uint32_t kTypeUnresolved = UINT32_MAX;

    http::Request request;
    std::string raw;
    des::Time arrival = 0;
    uint64_t clientId = 0;
    /**
     * Cohort type memoized by the dispatcher on first resolution, so
     * entries blocked on a busy context (structural hazard) do not
     * re-run path matching on every dispatch pass.
     */
    uint32_t routeType = kTypeUnresolved;
};

/** One cohort's context. */
class CohortContext
{
  public:
    /** @param id Stable context id within the pool. */
    explicit CohortContext(uint32_t id) : id_(id) {}

    /** Stable pool-slot id. */
    uint32_t id() const { return id_; }

    /** Current FSM state. */
    CohortState state() const { return state_; }

    /** Service-defined cohort type id carried (valid unless Free). */
    uint32_t type() const { return type_; }

    /** Capacity this cohort was allocated with. */
    uint32_t capacity() const { return capacity_; }

    /** Requests currently aboard. */
    const std::vector<CohortEntry> &entries() const { return entries_; }

    /** Mutable access for the pipeline (Busy state only). */
    std::vector<CohortEntry> &mutableEntries() { return entries_; }

    /** Arrival time of the oldest aboard request (0 when empty). */
    des::Time firstArrival() const { return firstArrival_; }

    /** Free → PartiallyFull (empty): claims the context for a type. */
    void allocate(uint32_t type, uint32_t capacity);

    /**
     * Adds a request (PartiallyFull only).
     * @return true if the cohort became Full.
     */
    bool add(CohortEntry entry);

    /** PartiallyFull/Full → Busy: the cohort enters the pipeline. */
    void markBusy();

    /** Busy → Free: responses sent, resources recycled. */
    void release();

  private:
    uint32_t id_;
    CohortState state_ = CohortState::Free;
    uint32_t type_ = 0;
    uint32_t capacity_ = 0;
    des::Time firstArrival_ = 0;
    std::vector<CohortEntry> entries_;
};

/** Fixed-size pool of cohort contexts. */
class CohortPool
{
  public:
    /**
     * @param contexts Number of contexts (cohorts in flight bound).
     * @param capacity Requests per cohort.
     */
    CohortPool(uint32_t contexts, uint32_t capacity);

    /**
     * Returns the context accepting requests of @p type: an existing
     * PartiallyFull one, else a freshly allocated Free one, else
     * nullptr (structural hazard — the caller stalls the reader).
     */
    CohortContext *acquireFor(uint32_t type);

    /** Context count by state. */
    uint32_t countInState(CohortState state) const;

    /** Applies @p fn to every non-Free, non-Busy context. */
    void forEachForming(const std::function<void(CohortContext &)> &fn);

    /**
     * Returns the non-empty PartiallyFull context with the earliest
     * firstArrival() among those @p eligible accepts, or nullptr.
     * Ties break on pool order (lowest id), so the choice is
     * deterministic — the adaptive batcher uses this to pick a
     * preemption victim (DESIGN.md Section 6i).
     */
    CohortContext *oldestPartiallyFull(
        const std::function<bool(const CohortContext &)> &eligible);

    /** All contexts (for inspection). */
    const std::vector<CohortContext> &contexts() const { return pool_; }

    /** Per-cohort request capacity. */
    uint32_t capacity() const { return capacity_; }

    /** Times acquireFor returned nullptr. */
    uint64_t stalls() const { return stalls_; }

  private:
    uint32_t capacity_;
    std::vector<CohortContext> pool_;
    uint64_t stalls_ = 0;
};

} // namespace rhythm::core

#endif // RHYTHM_RHYTHM_COHORT_HH
