/**
 * @file
 * Section 6.4 "Parser divergence": parser throughput on a cohort of
 * mixed request types (a real trace shape) vs a single-type cohort.
 * The paper measured 556 µs per 4096-request mixed cohort including the
 * request-buffer transpose — 7.4M reqs/s — concluding one parser
 * instance suffices even with divergence.
 */

#include <iostream>

#include "backend/bankdb.hh"
#include "bench/common.hh"
#include "http/parser.hh"
#include "rhythm/buffers.hh"
#include "simt/device.hh"
#include "specweb/workload.hh"

namespace {

using namespace rhythm;

/** Builds a parser kernel profile over a set of raw requests. */
simt::KernelProfile
profileParser(const std::vector<std::string> &raws, uint32_t slot_bytes)
{
    std::vector<simt::ThreadTrace> traces(raws.size());
    for (size_t i = 0; i < raws.size(); ++i) {
        simt::RecordingTracer rec(traces[i]);
        http::Request req;
        http::parseRequest(raws[i], 0x9000'0000 + i * slot_bytes, rec,
                           req);
        // The request-buffer transpose runs first, so the parser reads
        // the transposed (coalesced) layout.
        core::transposeRegionLoads(traces[i], 0x9000'0000,
                                   static_cast<uint32_t>(i), slot_bytes,
                                   static_cast<uint32_t>(raws.size()));
    }
    std::vector<const simt::ThreadTrace *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(&t);
    return simt::KernelProfile::fromTraces(ptrs, simt::WarpModel{},
                                           "parser");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter report("sec64_parser_divergence", argc, argv);
    bench::banner("Section 6.4: parser divergence",
                  "Section 6.4 (mixed cohort: 556 us, 7.4M reqs/s at "
                  "4096)");

    const uint32_t cohort = 4096;
    const uint32_t slot = 1024;
    backend::BankDb db(2000, 3);
    specweb::WorkloadGenerator gen(db, 11);
    simt::DeviceConfig dev;

    // Request-buffer transpose precedes the parser (the paper includes
    // it in the 556 us figure).
    simt::KernelProfile transpose = simt::KernelProfile::streaming(
        cohort, 2ull * cohort * slot, 96, simt::WarpModel{}, "transpose");
    const double transpose_us =
        computeKernelCost(transpose, dev).deviceSeconds * 1e6;

    // Divergence-free baseline: each type parsed in its own cohort, the
    // per-request times combined with the Table 2 mix. The mixed cohort
    // is then compared against that expectation, isolating the cost of
    // control divergence in the parser.
    double baseline_us_per_req = 0.0;
    double min_eff = 1.0;
    for (size_t i = 0; i < specweb::kNumRequestTypes; ++i) {
        const auto &info = specweb::typeTable()[i];
        std::vector<std::string> raws;
        for (uint32_t r = 0; r < cohort; ++r)
            raws.push_back(
                gen.generate(info.type, gen.sampleUser(), 1 + r).raw);
        simt::KernelProfile kp = profileParser(raws, slot);
        min_eff = std::min(min_eff, kp.simdEfficiency(32));
        baseline_us_per_req += info.mixPercent / 100.0 *
                               computeKernelCost(kp, dev).deviceSeconds *
                               1e6 / cohort;
    }

    std::vector<std::string> mixed;
    for (uint32_t i = 0; i < cohort; ++i)
        mixed.push_back(gen.next(1 + i % 4096).raw);
    simt::KernelProfile mixed_kp = profileParser(mixed, slot);
    simt::KernelCost mixed_cost = computeKernelCost(mixed_kp, dev);
    const double mixed_us = mixed_cost.deviceSeconds * 1e6 + transpose_us;
    const double baseline_us =
        baseline_us_per_req * cohort + transpose_us;

    TableWriter table({"cohort mix", "SIMD efficiency",
                       "kernel time us (incl. transpose)",
                       "parser MReqs/s", "paper"});
    table.addRow({"per-type cohorts (mix-weighted)",
                  ">= " + bench::fmt(min_eff, 2),
                  bench::fmt(baseline_us, 0),
                  bench::fmt(cohort / baseline_us, 1), "-"});
    table.addRow({"Table 2 mixed cohort",
                  bench::fmt(mixed_kp.simdEfficiency(32), 2),
                  bench::fmt(mixed_us, 0),
                  bench::fmt(cohort / mixed_us, 1),
                  "556 us, 7.4 MReqs/s"});
    table.printAscii(std::cout);
    std::cout << "Divergence slowdown (mixed vs per-type): "
              << bench::fmt(mixed_us / baseline_us, 2) << "x\n";
    std::cout
        << "Conclusion to verify (paper): even the fully mixed cohort "
           "parses fast enough\nthat a single parser instance does not "
           "limit server throughput; Rhythm can also\nrun multiple "
           "parser instances concurrently.\n";
    report.config("cohort_size", cohort);
    report.metric("mixed_cohort_us", mixed_us);
    report.metric("mixed_parser_mreqs", cohort / mixed_us);
    report.metric("mixed_simd_efficiency", mixed_kp.simdEfficiency(32));
    report.metric("divergence_slowdown", mixed_us / baseline_us);
    if (!report.write())
        return 1;
    return 0;
}
