#include "specweb/types.hh"

#include "util/logging.hh"

namespace rhythm::specweb {
namespace {

// Table 2 of the paper, verbatim. Mix percentages sum to 100 across the
// 14 implemented types (the paper normalizes after dropping quick pay
// and check detail images).
constexpr RequestTypeInfo kTable[] = {
    {RequestType::Login, "login", "/bank/login.php",
     132401, 4.0, 8, 28.17, 2},
    {RequestType::AccountSummary, "account summary",
     "/bank/account_summary.php", 392243, 17.0, 32, 19.77, 1},
    {RequestType::AddPayee, "add payee", "/bank/add_payee.php",
     335605, 18.0, 32, 1.47, 0},
    {RequestType::BillPay, "bill pay", "/bank/bill_pay.php",
     334105, 15.0, 32, 18.18, 1},
    {RequestType::BillPayStatusOutput, "bill pay status output",
     "/bank/bill_pay_status_output.php", 485176, 24.0, 32, 2.92, 1},
    {RequestType::ChangeProfile, "change profile",
     "/bank/change_profile.php", 560505, 29.0, 32, 1.60, 1},
    {RequestType::CheckDetailHtml, "check detail html",
     "/bank/check_detail_html.php", 240615, 11.0, 16, 11.06, 1},
    {RequestType::OrderCheck, "order check", "/bank/order_check.php",
     433352, 21.0, 32, 1.60, 1},
    {RequestType::PlaceCheckOrder, "place check order",
     "/bank/place_check_order.php", 466283, 25.0, 32, 1.15, 1},
    {RequestType::PostPayee, "post payee", "/bank/post_payee.php",
     638598, 34.0, 64, 1.05, 1},
    {RequestType::PostTransfer, "post transfer", "/bank/post_transfer.php",
     334267, 16.0, 32, 1.60, 1},
    {RequestType::Profile, "profile", "/bank/profile.php",
     590816, 32.0, 64, 1.15, 1},
    {RequestType::Transfer, "transfer", "/bank/transfer.php",
     277235, 13.0, 16, 2.24, 1},
    {RequestType::Logout, "logout", "/bank/logout.php",
     792684, 46.0, 64, 8.06, 0},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) == kNumRequestTypes);

} // namespace

const RequestTypeInfo &
typeInfo(RequestType type)
{
    const size_t idx = typeIndex(type);
    RHYTHM_ASSERT(idx < kNumRequestTypes);
    RHYTHM_ASSERT(kTable[idx].type == type, "metadata table out of order");
    return kTable[idx];
}

const RequestTypeInfo *
typeTable()
{
    return kTable;
}

bool
typeFromPath(std::string_view path, RequestType &out)
{
    for (const auto &info : kTable) {
        if (info.path == path) {
            out = info.type;
            return true;
        }
    }
    return false;
}

} // namespace rhythm::specweb
