/**
 * @file
 * Span-based tracer recording against the DES clock.
 *
 * Spans and instants are recorded on integer tracks (rendered as
 * threads by trace viewers) and exported as Chrome trace_event JSON,
 * loadable in chrome://tracing or https://ui.perfetto.dev. Timestamps
 * are simulated time (picoseconds internally, microseconds in the
 * export), so a trace shows the *modelled* pipeline concurrency:
 * cohort contexts overlapping, kernels sharing hardware queues, PCIe
 * engines serializing copies.
 *
 * Two span styles:
 *  - begin()/end(): nested duration events ("B"/"E") paired per track
 *    (LIFO), for call-graph-like nesting.
 *  - complete(): one event with a known start and end ("X"), the
 *    common case in an event-driven pipeline where the end of a stage
 *    is the natural recording point.
 */

#ifndef RHYTHM_OBS_TRACE_HH
#define RHYTHM_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "des/time.hh"
#include "obs/json.hh"

namespace rhythm::obs {

/**
 * Tracks are partitioned into per-process blocks of this size for the
 * Chrome export: an event's pid is track / kTrackPidStride and its tid
 * is track % kTrackPidStride. The single-device simulator uses only
 * tracks < kTrackPidStride (pid 0, process "rhythm"); a fleet offsets
 * device i's tracks by (i + 1) * kTrackPidStride so each device
 * renders as its own process row.
 */
inline constexpr uint32_t kTrackPidStride = 1000;

/** One key/value annotation attached to a trace event. */
struct TraceArg
{
    TraceArg(const char *k, double v) : key(k), num(v) {}
    TraceArg(const char *k, uint64_t v)
        : key(k), num(static_cast<double>(v))
    {
    }
    TraceArg(const char *k, std::string v)
        : key(k), str(std::move(v)), isString(true)
    {
    }

    const char *key;
    double num = 0.0;
    std::string str;
    bool isString = false;
};

/** One recorded trace event. */
struct TraceEvent
{
    enum class Phase : char {
        Begin = 'B',
        End = 'E',
        Complete = 'X',
        Instant = 'i',
    };

    uint32_t track = 0;
    Phase phase = Phase::Complete;
    std::string name;
    const char *category = "";
    des::Time ts = 0;  //!< Start (or instant) time.
    des::Time dur = 0; //!< Duration (Complete only).
    std::vector<TraceArg> args;
};

/** Records spans/instants and exports Chrome trace_event JSON. */
class Tracer
{
  public:
    /** Names a track (idempotent; first name wins). */
    void setTrackName(uint32_t track, std::string_view name);

    /**
     * Names a process block (pid = track / kTrackPidStride) in the
     * Chrome export. Pid 0 defaults to "rhythm"; a fleet names pid
     * i + 1 "dev<i>". Idempotent; first name wins.
     */
    void setProcessName(uint32_t pid, std::string_view name);

    /** Opens a nested span on @p track. */
    void begin(uint32_t track, std::string name, const char *category,
               des::Time now, std::vector<TraceArg> args = {});

    /**
     * Closes the innermost open span on @p track. Unbalanced calls
     * (no open span) are dropped — the exporter never emits an "E"
     * without its "B".
     */
    void end(uint32_t track, des::Time now);

    /** Records a span with known start and end. */
    void complete(uint32_t track, std::string name,
                  const char *category, des::Time start, des::Time end,
                  std::vector<TraceArg> args = {});

    /** Records an instantaneous event. */
    void instant(uint32_t track, std::string name,
                 const char *category, des::Time now,
                 std::vector<TraceArg> args = {});

    /** Events recorded so far. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Open (unclosed) begin() spans on @p track. */
    size_t openSpans(uint32_t track) const;

    /** Drops all events and open-span state (track names survive). */
    void clear();

    /**
     * Writes the Chrome trace_event JSON object. Events are sorted by
     * timestamp (stable, so same-instant begin/end pairs keep their
     * recording order); track names become thread_name metadata.
     */
    void writeChromeTrace(std::ostream &out) const;

  private:
    std::vector<TraceEvent> events_;
    std::map<uint32_t, std::string> trackNames_;
    std::map<uint32_t, std::string> processNames_;
    std::map<uint32_t, uint32_t> openSpans_;
};

} // namespace rhythm::obs

#endif // RHYTHM_OBS_TRACE_HH
