file(REMOVE_RECURSE
  "CMakeFiles/rhythm_util.dir/flags.cc.o"
  "CMakeFiles/rhythm_util.dir/flags.cc.o.d"
  "CMakeFiles/rhythm_util.dir/logging.cc.o"
  "CMakeFiles/rhythm_util.dir/logging.cc.o.d"
  "CMakeFiles/rhythm_util.dir/rng.cc.o"
  "CMakeFiles/rhythm_util.dir/rng.cc.o.d"
  "CMakeFiles/rhythm_util.dir/stats.cc.o"
  "CMakeFiles/rhythm_util.dir/stats.cc.o.d"
  "CMakeFiles/rhythm_util.dir/strings.cc.o"
  "CMakeFiles/rhythm_util.dir/strings.cc.o.d"
  "CMakeFiles/rhythm_util.dir/table.cc.o"
  "CMakeFiles/rhythm_util.dir/table.cc.o.d"
  "librhythm_util.a"
  "librhythm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
