#include "obs/metrics.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhythm::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    RHYTHM_ASSERT(!bounds_.empty(), "histogram needs at least one bound");
    for (size_t i = 1; i < bounds_.size(); ++i)
        RHYTHM_ASSERT(bounds_[i] > bounds_[i - 1],
                      "histogram bounds must be strictly increasing");
}

std::vector<double>
FixedHistogram::exponentialBounds(double first, double factor,
                                  size_t count)
{
    std::vector<double> bounds;
    bounds.reserve(count);
    double b = first;
    for (size_t i = 0; i < count; ++i) {
        bounds.push_back(b);
        b *= factor;
    }
    return bounds;
}

const std::vector<double> &
FixedHistogram::defaultLatencyBoundsMs()
{
    // 1 us .. ~134 s in powers of two: 28 buckets + overflow.
    static const std::vector<double> bounds =
        exponentialBounds(1e-3, 2.0, 28);
    return bounds;
}

void
FixedHistogram::add(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    counts_[static_cast<size_t>(it - bounds_.begin())]++;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

double
FixedHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank target (1-based).
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(p / 100.0 *
                                     static_cast<double>(count_) +
                                 0.5));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const uint64_t before = cumulative;
        cumulative += counts_[i];
        if (cumulative < rank)
            continue;
        // Interpolate inside bucket i between its lower and upper edge.
        const double lo = i == 0 ? min_ : bounds_[i - 1];
        const double hi = i < bounds_.size() ? bounds_[i] : max_;
        const double frac =
            static_cast<double>(rank - before) /
            static_cast<double>(counts_[i]);
        const double v = lo + (hi - lo) * frac;
        return std::clamp(v, min_, max_);
    }
    return max_;
}

void
FixedHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

FixedHistogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        if (bounds.empty())
            bounds = FixedHistogram::defaultLatencyBoundsMs();
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<FixedHistogram>(
                              std::move(bounds)))
                 .first;
    }
    return *it->second;
}

bool
MetricsRegistry::has(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.find(name) != counters_.end() ||
           gauges_.find(name) != gauges_.end() ||
           histograms_.find(name) != histograms_.end();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, c] : counters_) {
        w.key(name);
        w.value(c->value());
    }
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, g] : gauges_) {
        w.key(name);
        w.value(g->value());
    }
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : histograms_) {
        w.key(name);
        w.beginObject();
        w.key("count");
        w.value(h->count());
        w.key("sum");
        w.value(h->sum());
        w.key("min");
        w.value(h->min());
        w.key("max");
        w.value(h->max());
        w.key("p50");
        w.value(h->p50());
        w.key("p95");
        w.value(h->p95());
        w.key("p99");
        w.value(h->p99());
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

bool
isDeviceNamespaced(std::string_view name)
{
    if (!name.starts_with("dev"))
        return false;
    size_t i = 3;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9')
        ++i;
    return i > 3 && i < name.size() && name[i] == '.';
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::flatten(std::string_view exclude_prefix) const
{
    if (exclude_prefix.empty())
        return flatten(std::span<const std::string_view>{});
    return flatten(std::span<const std::string_view>(&exclude_prefix, 1));
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::flatten(
    std::span<const std::string_view> exclude_prefixes) const
{
    const auto excluded = [&](const std::string &name) {
        const std::string_view sv(name);
        // Per-device namespaces are baseline-excluded whenever the
        // caller is filtering against a baseline prefix set: fleet
        // metrics exist only when --devices > 1, and the
        // prefix-filtered outputs must stay byte-identical to
        // single-device runs. (Unfiltered flatten() keeps them.)
        if (!exclude_prefixes.empty() && isDeviceNamespaced(sv))
            return true;
        for (const std::string_view prefix : exclude_prefixes) {
            if (sv.starts_with(prefix))
                return true;
        }
        return false;
    };
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    for (const auto &[name, c] : counters_) {
        if (!excluded(name))
            out.emplace_back(name, static_cast<double>(c->value()));
    }
    for (const auto &[name, g] : gauges_) {
        if (!excluded(name))
            out.emplace_back(name, g->value());
    }
    for (const auto &[name, h] : histograms_) {
        if (excluded(name))
            continue;
        out.emplace_back(name + ".count",
                         static_cast<double>(h->count()));
        out.emplace_back(name + ".mean", h->mean());
        out.emplace_back(name + ".p50", h->p50());
        out.emplace_back(name + ".p95", h->p95());
        out.emplace_back(name + ".p99", h->p99());
        out.emplace_back(name + ".max", h->max());
    }
    return out;
}

} // namespace rhythm::obs
