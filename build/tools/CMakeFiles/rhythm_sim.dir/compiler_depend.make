# Empty compiler generated dependencies file for rhythm_sim.
# This may be replaced when dependencies are built.
