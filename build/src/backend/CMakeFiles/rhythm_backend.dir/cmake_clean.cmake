file(REMOVE_RECURSE
  "CMakeFiles/rhythm_backend.dir/bankdb.cc.o"
  "CMakeFiles/rhythm_backend.dir/bankdb.cc.o.d"
  "CMakeFiles/rhythm_backend.dir/protocol.cc.o"
  "CMakeFiles/rhythm_backend.dir/protocol.cc.o.d"
  "CMakeFiles/rhythm_backend.dir/service.cc.o"
  "CMakeFiles/rhythm_backend.dir/service.cc.o.d"
  "librhythm_backend.a"
  "librhythm_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhythm_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
