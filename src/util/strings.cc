#include "util/strings.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rhythm {

std::vector<std::string_view>
split(std::string_view text, char delim)
{
    std::vector<std::string_view> parts;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            parts.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
humanBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    while (bytes >= 1024.0 && idx < 4) {
        bytes /= 1024.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, suffixes[idx]);
    return buf;
}

std::string
humanCount(double value)
{
    static const char *suffixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    while (std::fabs(value) >= 1000.0 && idx < 4) {
        value /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

bool
parseU64(std::string_view text, uint64_t &out)
{
    if (text.empty())
        return false;
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

} // namespace rhythm
