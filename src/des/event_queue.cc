#include "des/event_queue.hh"

#include "util/logging.hh"

namespace rhythm::des {

EventId
EventQueue::scheduleAt(Time when, Callback cb)
{
    RHYTHM_ASSERT(when >= now_, "cannot schedule into the past");
    RHYTHM_ASSERT(cb, "null event callback");
    EventId id{when, nextSequence_++};
    events_.emplace(Key{id.when, id.sequence}, std::move(cb));
    if (events_.size() > maxPending_)
        maxPending_ = events_.size();
    return id;
}

EventId
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(const EventId &id)
{
    return events_.erase(Key{id.when, id.sequence}) > 0;
}

uint64_t
EventQueue::run(Time horizon)
{
    stopRequested_ = false;
    uint64_t dispatched = 0;
    while (!events_.empty() && !stopRequested_) {
        auto it = events_.begin();
        if (horizon != 0 && it->first.first > horizon) {
            now_ = horizon;
            return dispatched;
        }
        if (!step())
            break;
        ++dispatched;
    }
    if (horizon != 0 && now_ < horizon && events_.empty())
        now_ = horizon;
    return dispatched;
}

namespace {

/// Folds one 64-bit value into an FNV-1a hash, byte by byte.
uint64_t
fnv1a(uint64_t hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    RHYTHM_ASSERT(it->first.first >= now_, "event queue went backwards");
    const Key key = it->first;
    now_ = key.first;
    Callback cb = std::move(it->second);
    events_.erase(it);
    ++dispatched_;
    orderHash_ =
        fnv1a(fnv1a(orderHash_, static_cast<uint64_t>(key.first)), key.second);
    cb();
    return true;
}

} // namespace rhythm::des
