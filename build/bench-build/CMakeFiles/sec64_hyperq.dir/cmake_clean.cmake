file(REMOVE_RECURSE
  "../bench/sec64_hyperq"
  "../bench/sec64_hyperq.pdb"
  "CMakeFiles/sec64_hyperq.dir/sec64_hyperq.cc.o"
  "CMakeFiles/sec64_hyperq.dir/sec64_hyperq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_hyperq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
