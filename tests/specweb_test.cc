/**
 * @file
 * End-to-end tests for the Banking workload: every request type is
 * generated, served through the host server, and validated; page sizes
 * and instruction counts are checked against their Table 2 calibration
 * targets; trace similarity across same-type requests is asserted (the
 * property Rhythm exploits).
 */

#include <gtest/gtest.h>

#include "backend/bankdb.hh"
#include "host/server.hh"
#include "simt/warp.hh"
#include "specweb/banking.hh"
#include "specweb/context.hh"
#include "specweb/html.hh"
#include "specweb/types.hh"
#include "specweb/workload.hh"

namespace rhythm::specweb {
namespace {

simt::NullTracer gNull;

class BankingFixture : public ::testing::Test
{
  protected:
    BankingFixture() : db_(200, 99), server_(db_, sessions_), gen_(db_, 5)
    {
    }

    /// Establishes a session for a user directly in the store.
    uint64_t
    sessionFor(uint64_t user)
    {
        return sessions_.create(user, gNull);
    }

    /// Generates and serves one request; returns the raw response.
    std::string
    serveType(RequestType type, uint64_t user, simt::TraceRecorder &rec)
    {
        const uint64_t sid =
            type == RequestType::Login ? 0 : sessionFor(user);
        GeneratedRequest req = gen_.generate(type, user, sid);
        return server_.serve(req.raw, rec);
    }

    backend::BankDb db_;
    MapSessionProvider sessions_;
    host::HostServer server_;
    WorkloadGenerator gen_;
};

TEST_F(BankingFixture, MetadataTableIsConsistent)
{
    double mix = 0.0;
    for (size_t i = 0; i < kNumRequestTypes; ++i) {
        const RequestTypeInfo &info = typeTable()[i];
        EXPECT_EQ(typeIndex(info.type), i);
        EXPECT_EQ(&typeInfo(info.type), &typeTable()[i]);
        mix += info.mixPercent;
        RequestType parsed;
        ASSERT_TRUE(typeFromPath(info.path, parsed)) << info.path;
        EXPECT_EQ(parsed, info.type);
        // Rhythm buffers are the next power of two above the SPECWeb size.
        EXPECT_GE(info.rhythmBufferKb, info.specwebResponseKb);
        EXPECT_EQ(info.rhythmBufferKb & (info.rhythmBufferKb - 1), 0u);
    }
    EXPECT_NEAR(mix, 100.0, 0.1);
    RequestType dummy;
    EXPECT_FALSE(typeFromPath("/bank/quick_pay.php", dummy));
}

// Every request type round-trips and passes the validator.
class AllTypes : public BankingFixture,
                 public ::testing::WithParamInterface<int>
{
};

TEST_P(AllTypes, ServesValidResponse)
{
    const RequestType type = static_cast<RequestType>(GetParam());
    const std::string response = serveType(type, 7, gNull);
    ValidationResult v = validateResponse(type, response);
    EXPECT_TRUE(v.ok) << typeInfo(type).name << ": " << v.reason;
}

TEST_P(AllTypes, ResponseSizeNearSpecwebTarget)
{
    const RequestType type = static_cast<RequestType>(GetParam());
    const std::string response = serveType(type, 11, gNull);
    const double target = typeInfo(type).specwebResponseKb * 1024.0;
    EXPECT_GT(response.size(), target * 0.75)
        << typeInfo(type).name << " size " << response.size();
    EXPECT_LT(response.size(), target * 1.25)
        << typeInfo(type).name << " size " << response.size();
    // And within the Rhythm power-of-two buffer.
    EXPECT_LE(response.size(), typeInfo(type).rhythmBufferKb * 1024u);
}

TEST_P(AllTypes, InstructionCountNearPaperTarget)
{
    const RequestType type = static_cast<RequestType>(GetParam());
    simt::CountingTracer ct;
    serveType(type, 13, ct);
    const double target = typeInfo(type).paperInstructions;
    EXPECT_GT(ct.instructions(), target * 0.7)
        << typeInfo(type).name << " insts " << ct.instructions();
    EXPECT_LT(ct.instructions(), target * 1.3)
        << typeInfo(type).name << " insts " << ct.instructions();
}

TEST_P(AllTypes, SameTypeRequestsShareControlFlow)
{
    // The merged trace of two same-type requests should be barely longer
    // than one alone (Figure 2's near-linear speedup property).
    const RequestType type = static_cast<RequestType>(GetParam());
    // Cohorts group requests of the same form; bill_pay_status_output has
    // two forms (execute payment vs list history), so pin one of them by
    // resampling until both requests carry the same parameter shape.
    auto generateSameForm = [&](uint64_t user) {
        for (;;) {
            const uint64_t sid =
                type == RequestType::Login ? 0 : sessionFor(user);
            GeneratedRequest req = gen_.generate(type, user, sid);
            if (type != RequestType::BillPayStatusOutput ||
                req.raw.find("payee=") == std::string::npos)
                return req;
        }
    };
    simt::ThreadTrace ta, tb;
    {
        GeneratedRequest req = generateSameForm(17);
        simt::RecordingTracer rec(ta);
        server_.serve(req.raw, rec);
    }
    {
        GeneratedRequest req = generateSameForm(23);
        simt::RecordingTracer rec(tb);
        server_.serve(req.raw, rec);
    }
    const std::vector<const simt::ThreadTrace *> lanes = {&ta, &tb};
    simt::WarpStats ws = simt::simulateWarp(
        std::span<const simt::ThreadTrace *const>(lanes.data(), 2));
    const double efficiency =
        static_cast<double>(ws.laneInstructions) /
        (2.0 * static_cast<double>(ws.issueSlots));
    EXPECT_GT(efficiency, 0.90) << typeInfo(type).name;
}

INSTANTIATE_TEST_SUITE_P(
    Types, AllTypes, ::testing::Range(0, static_cast<int>(kNumRequestTypes)),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name(
            typeInfo(static_cast<RequestType>(info.param)).name);
        for (char &c : name)
            if (c == ' ')
                c = '_';
        return name;
    });

TEST_F(BankingFixture, LoginCreatesUsableSession)
{
    GeneratedRequest login =
        gen_.generate(RequestType::Login, 42, 0);
    const std::string response = server_.serve(login.raw, gNull);
    const uint64_t sid = extractSessionId(response);
    ASSERT_NE(sid, 0u);
    // The session works for a follow-up page.
    GeneratedRequest summary =
        gen_.generate(RequestType::AccountSummary, 42, sid);
    const std::string page = server_.serve(summary.raw, gNull);
    EXPECT_TRUE(validateResponse(RequestType::AccountSummary, page).ok);
}

TEST_F(BankingFixture, LogoutDestroysSession)
{
    const uint64_t sid = sessionFor(5);
    GeneratedRequest logout = gen_.generate(RequestType::Logout, 5, sid);
    const std::string page = server_.serve(logout.raw, gNull);
    EXPECT_TRUE(validateResponse(RequestType::Logout, page).ok);
    // The session is gone: a summary with it now fails.
    GeneratedRequest summary =
        gen_.generate(RequestType::AccountSummary, 5, sid);
    const std::string err = server_.serve(summary.raw, gNull);
    EXPECT_NE(err.find("400"), std::string::npos);
    EXPECT_NE(err.find("page:error"), std::string::npos);
}

TEST_F(BankingFixture, InvalidSessionYieldsErrorPage)
{
    GeneratedRequest req =
        gen_.generate(RequestType::AccountSummary, 3, 999999999);
    const std::string page = server_.serve(req.raw, gNull);
    EXPECT_NE(page.find("HTTP/1.1 400"), std::string::npos);
    EXPECT_FALSE(validateResponse(RequestType::AccountSummary, page).ok);
}

TEST_F(BankingFixture, BadLoginRejected)
{
    const std::string raw = http::buildRequest(
        http::Method::Post, "/bank/login.php",
        {{"userid", "42"}, {"password", "wrong"}});
    const std::string page = server_.serve(raw, gNull);
    EXPECT_NE(page.find("HTTP/1.1 400"), std::string::npos);
    EXPECT_EQ(extractSessionId(page), 0u);
}

TEST_F(BankingFixture, UnknownPathIs404)
{
    const std::string raw = http::buildRequest(
        http::Method::Get, "/bank/no_such_page.php", {});
    const std::string page = server_.serve(raw, gNull);
    EXPECT_NE(page.find("404"), std::string::npos);
}

TEST_F(BankingFixture, MalformedRequestIs400)
{
    const std::string page = server_.serve("garbage\r\n\r\n", gNull);
    EXPECT_NE(page.find("400"), std::string::npos);
}

TEST_F(BankingFixture, PostTransferMovesMoney)
{
    const int64_t before =
        db_.account(backend::BankDb::checkingId(8))->balanceCents +
        db_.account(backend::BankDb::savingsId(8))->balanceCents;
    const uint64_t sid = sessionFor(8);
    const std::string raw = http::buildRequest(
        http::Method::Post, "/bank/post_transfer.php",
        {{"from", std::to_string(backend::BankDb::checkingId(8))},
         {"to", std::to_string(backend::BankDb::savingsId(8))},
         {"amount", "777"}},
        "session=" + std::to_string(sid));
    const std::string page = server_.serve(raw, gNull);
    EXPECT_TRUE(validateResponse(RequestType::PostTransfer, page).ok);
    const int64_t after =
        db_.account(backend::BankDb::checkingId(8))->balanceCents +
        db_.account(backend::BankDb::savingsId(8))->balanceCents;
    EXPECT_EQ(before, after); // conserved
}

TEST_F(BankingFixture, MixSamplingMatchesTable2)
{
    WorkloadGenerator gen(db_, 123);
    std::array<int, kNumRequestTypes> counts{};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[typeIndex(gen.sampleType())];
    for (size_t i = 0; i < kNumRequestTypes; ++i) {
        const double expected = typeTable()[i].mixPercent / 100.0;
        const double actual = static_cast<double>(counts[i]) / n;
        EXPECT_NEAR(actual, expected, 0.01)
            << typeTable()[i].name;
    }
}

TEST_F(BankingFixture, GeneratorIsDeterministic)
{
    WorkloadGenerator a(db_, 77), b(db_, 77);
    for (int i = 0; i < 50; ++i) {
        GeneratedRequest ra = a.next(1);
        GeneratedRequest rb = b.next(1);
        EXPECT_EQ(ra.type, rb.type);
        EXPECT_EQ(ra.raw, rb.raw);
    }
}

TEST_F(BankingFixture, ClosedLoopSessionLifecycle)
{
    // login → several pages → logout, all validated.
    GeneratedRequest login = gen_.generate(RequestType::Login, 30, 0);
    const uint64_t sid = extractSessionId(server_.serve(login.raw, gNull));
    ASSERT_NE(sid, 0u);
    for (RequestType t : {RequestType::AccountSummary, RequestType::BillPay,
                          RequestType::Transfer, RequestType::Profile}) {
        GeneratedRequest r = gen_.generate(t, 30, sid);
        EXPECT_TRUE(validateResponse(t, server_.serve(r.raw, gNull)).ok)
            << typeInfo(t).name;
    }
    GeneratedRequest out = gen_.generate(RequestType::Logout, 30, sid);
    EXPECT_TRUE(validateResponse(RequestType::Logout,
                                 server_.serve(out.raw, gNull))
                    .ok);
}

TEST(Html, FormatCents)
{
    EXPECT_EQ(html::formatCents(123456), "$1,234.56");
    EXPECT_EQ(html::formatCents(-7), "-$0.07");
    EXPECT_EQ(html::formatCents(0), "$0.00");
    EXPECT_EQ(html::formatCents(100), "$1.00");
}

TEST(Html, FormatDate)
{
    EXPECT_EQ(html::formatDate(0), "2000-01-01");
    EXPECT_EQ(html::formatDate(360), "2001-01-01");
    EXPECT_EQ(html::formatDate(35), "2000-02-06");
}

TEST(Html, ContentLengthBackPatch)
{
    simt::NullTracer null;
    StringResponseWriter w(null);
    const size_t cl = html::beginResponse(w);
    const size_t header_end = w.size();
    w.appendStatic(1, "0123456789");
    const size_t body = html::finishResponse(w, cl, header_end);
    EXPECT_EQ(body, 10u);
    EXPECT_NE(w.str().find("Content-Length: 10"), std::string::npos);
}

TEST(Context, MapSessionProviderLifecycle)
{
    simt::NullTracer null;
    MapSessionProvider sp;
    const uint64_t s1 = sp.create(10, null);
    const uint64_t s2 = sp.create(20, null);
    EXPECT_NE(s1, 0u);
    EXPECT_NE(s1, s2);
    EXPECT_EQ(sp.lookup(s1, null), 10u);
    EXPECT_EQ(sp.lookup(s2, null), 20u);
    EXPECT_EQ(sp.lookup(12345, null), 0u);
    EXPECT_EQ(sp.liveSessions(), 2u);
    EXPECT_TRUE(sp.destroy(s1, null));
    EXPECT_FALSE(sp.destroy(s1, null));
    EXPECT_EQ(sp.lookup(s1, null), 0u);
}

TEST(Context, StringWriterReserveAndPatch)
{
    simt::NullTracer null;
    StringResponseWriter w(null);
    w.appendStatic(1, "X: ");
    const size_t off = w.reserve(1, 5);
    w.appendStatic(1, "!");
    EXPECT_EQ(w.str(), "X:      !");
    w.patch(off, "42");
    EXPECT_EQ(w.str(), "X: 42   !");
}

} // namespace
} // namespace rhythm::specweb
