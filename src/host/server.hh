/**
 * @file
 * The standalone event-based host server: the paper's "C version" of the
 * Banking workload used for all CPU baselines (Core i5/i7, ARM A9).
 *
 * One request is processed at a time, straight through all of its
 * process stages with the backend as a direct function call (the paper's
 * maximum-throughput CPU configuration, Section 5.3). The same handler
 * code, session store semantics and wire formats as the Rhythm pipeline
 * are used; only the execution substrate differs.
 */

#ifndef RHYTHM_HOST_SERVER_HH
#define RHYTHM_HOST_SERVER_HH

#include <string>
#include <string_view>

#include "backend/service.hh"
#include "simt/trace.hh"
#include "specweb/banking.hh"
#include "specweb/context.hh"
#include "specweb/static_content.hh"

namespace rhythm::host {

/**
 * Serves Banking requests synchronously on the host.
 *
 * Not thread safe; platform models scale single-stream results to
 * multiple worker threads analytically (as the paper scales cores).
 */
class HostServer
{
  public:
    /**
     * @param db The bank database (not owned).
     * @param sessions Session store (not owned).
     * @param static_content Optional asset store (not owned); when
     *        absent, image paths 404.
     */
    HostServer(backend::BankDb &db, specweb::SessionProvider &sessions,
               const specweb::StaticContent *static_content = nullptr);

    /**
     * Serves one request end to end.
     *
     * @param raw_request Complete HTTP request message.
     * @param rec Trace recorder charged with all work (parser, handler
     *        stages, backend service).
     * @return Complete HTTP response message.
     */
    std::string serve(std::string_view raw_request,
                      simt::TraceRecorder &rec);

    /** Structured serve: also reports the resolved type and outcome. */
    struct Result
    {
        std::string response;
        specweb::RequestType type = specweb::RequestType::Login;
        bool recognized = false;
        bool failed = false;
    };

    /** Serves one request, returning structured metadata. */
    Result serveDetailed(std::string_view raw_request,
                         simt::TraceRecorder &rec);

    /** Total requests served. */
    uint64_t requestsServed() const { return served_; }

    /** The backend service (exposed for harness accounting). */
    backend::BackendService &backendService() { return backend_; }

  private:
    backend::BackendService backend_;
    specweb::SessionProvider &sessions_;
    const specweb::StaticContent *staticContent_;
    specweb::BankingApp app_;
    uint64_t served_ = 0;
};

} // namespace rhythm::host

#endif // RHYTHM_HOST_SERVER_HH
