file(REMOVE_RECURSE
  "librhythm_http.a"
)
