/**
 * @file
 * Shared helpers for the benchmark harness: paper reference values and
 * uniform printing. Every bench binary regenerates one table or figure
 * of the paper and prints measured rows next to the paper's reference
 * values so the shape comparison is immediate.
 */

#ifndef RHYTHM_BENCH_COMMON_HH
#define RHYTHM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace rhythm::bench {

/**
 * Applies a `--sim-threads=N` argument (host-side parallelism of the
 * simulator's execution engine; default 1 = serial) to the global sim
 * pool. Called by the Reporter constructor, so every bench accepts the
 * flag; rhythm_sim parses it through its own Flags machinery. N only
 * changes wall-clock time — all simulated outputs are byte-identical
 * by the engine's determinism contract, which is why the value is
 * deliberately NOT recorded in the --json config section.
 */
inline void
applySimThreads(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--sim-threads=", 0) == 0) {
            const int n = std::atoi(std::string(arg.substr(14)).c_str());
            util::setSimThreads(n > 0 ? static_cast<unsigned>(n) : 1);
        }
    }
}

/** Paper Table 3 reference values for one platform row. */
struct PaperTable3Row
{
    const char *name;
    double idleWatts;
    double wallWatts;
    double dynamicWatts;
    double latencyMs;
    double throughputK; //!< KReqs/s
    double rpjWall;
    double rpjDynamic;
};

/** The paper's Table 3 (SPECWeb Banking experimental results). */
inline constexpr PaperTable3Row kPaperTable3[] = {
    {"Core i5 1 worker", 47, 67, 20, 0.016, 75, 972, 3283},
    {"Core i5 4 workers", 47, 98, 51, 0.016, 282, 2447, 4712},
    {"Core i7 4 workers", 45, 147, 102, 0.014, 331, 1901, 2735},
    {"Core i7 8 workers", 45, 156, 111, 0.014, 377, 2042, 2873},
    {"ARM A9 1 worker", 2, 3.4, 1.4, 0.176, 8, 1672, 4061},
    {"ARM A9 2 workers", 2, 4.5, 2.5, 0.176, 16, 2683, 4830},
    {"Titan A", 74, 226, 152, 86, 398, 1469, 2193},
    {"Titan B", 74, 306, 232, 24, 1535, 3329, 4410},
    {"Titan C", 74, 285, 211, 10, 3082, 9070, 12264},
};

/** Prints a bench banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=================================================="
                 "====================\n"
              << title << "\n"
              << "Reproduces: " << paper_ref << "\n"
              << "=================================================="
                 "====================\n";
}

/** Formats a double with given precision (shorthand). */
inline std::string
fmt(double v, int precision = 2)
{
    return formatDouble(v, precision);
}

/** Formats "measured (paper ref)" in one cell. */
inline std::string
withRef(double measured, double reference, int precision = 2)
{
    return formatDouble(measured, precision) + " (" +
           formatDouble(reference, precision) + ")";
}

/** Lower-cases and underscores a display name into a stable metric key. */
inline std::string
slug(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c >= 'A' && c <= 'Z')
            out.push_back(static_cast<char>(c - 'A' + 'a'));
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out.push_back(c);
        else if (c == ' ' || c == '/' || c == '-')
            out.push_back('_');
        // Anything else (punctuation) is dropped.
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

/** Peak resident set size of this process in KiB (0 if unavailable). */
inline double
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
        return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
        return static_cast<double>(usage.ru_maxrss);
#endif
    }
#endif
    return 0.0;
}

/**
 * Machine-readable bench output: every bench binary accepts
 * `--json=<path>` and, when given, emits one JSON document
 *
 *     {"bench": <name>, "config": {...}, "metrics": {...}}
 *
 * with flat dotted metric keys (e.g. "titan_b.throughput"). The schema
 * is shared by all benches and by `rhythm_sim --json`, and is what
 * tools/check_bench.py compares against bench/baselines/ in the CI
 * perf gate — so metric keys are part of a stable interface: renaming
 * one requires regenerating the baselines.
 *
 * Benches that also measure host-side performance opt into a fourth
 * top-level "host" object (enableHostStats): wall-clock since Reporter
 * construction ("host_ms"), peak RSS ("peak_rss_kb") and any values
 * recorded with hostStat(). Host values are machine-dependent, so
 * check_bench.py gates them with a separate, wider tolerance band
 * (--host-tolerance) than the exact deterministic metrics — and the
 * section stays off by default so outputs that CI byte-compares across
 * runs (e.g. rhythm_sim at different --sim-threads) remain identical.
 */
class Reporter
{
  public:
    /** @param bench Stable bench name (matches the binary name). */
    Reporter(std::string bench, int argc, char **argv)
        : bench_(std::move(bench))
    {
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--json=", 0) == 0)
                path_ = std::string(arg.substr(7));
        }
        applySimThreads(argc, argv);
    }

    /** True when --json=<path> was passed. */
    bool enabled() const { return !path_.empty(); }

    /** Records a config key (run parameters, not compared by the gate). */
    void config(std::string key, double value)
    {
        config_.push_back({std::move(key), value, {}, false});
    }
    void config(std::string key, std::string value)
    {
        config_.push_back({std::move(key), 0.0, std::move(value), true});
    }

    /** Records one gate-comparable metric. */
    void metric(std::string key, double value)
    {
        metrics_.push_back({std::move(key), value});
    }

    /**
     * Records every metric of a registry (flattened dotted keys),
     * minus any whose name starts with @p exclude_prefix.
     */
    void metricsFrom(const obs::MetricsRegistry &registry,
                     const std::string &prefix = "",
                     std::string_view exclude_prefix = {})
    {
        for (auto &[key, value] : registry.flatten(exclude_prefix))
            metric(prefix + key, value);
    }

    /** Turns on the "host" section of the document (see class docs). */
    void enableHostStats() { hostStats_ = true; }

    /** Records one host-section value (implies enableHostStats). */
    void hostStat(std::string key, double value)
    {
        hostStats_ = true;
        host_.push_back({std::move(key), value});
    }

    /**
     * Writes the JSON document; no-op without --json. Returns false
     * (and prints to stderr) when the file cannot be written.
     */
    bool write() const
    {
        if (path_.empty())
            return true;
        std::ofstream out(path_);
        if (!out) {
            std::cerr << "error: cannot write --json file: " << path_
                      << "\n";
            return false;
        }
        obs::JsonWriter w(out);
        w.beginObject();
        w.key("bench");
        w.value(bench_);
        w.key("config");
        w.beginObject();
        for (const auto &entry : config_) {
            w.key(entry.key);
            if (entry.isString)
                w.value(entry.str);
            else
                w.value(entry.num);
        }
        w.endObject();
        w.key("metrics");
        w.beginObject();
        for (const auto &[key, value] : metrics_) {
            w.key(key);
            w.value(value);
        }
        w.endObject();
        if (hostStats_) {
            w.key("host");
            w.beginObject();
            w.key("host_ms");
            w.value(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
            w.key("peak_rss_kb");
            w.value(peakRssKb());
            for (const auto &[key, value] : host_) {
                w.key(key);
                w.value(value);
            }
            w.endObject();
        }
        w.endObject();
        out << "\n";
        return out.good();
    }

  private:
    struct ConfigEntry
    {
        std::string key;
        double num = 0.0;
        std::string str;
        bool isString = false;
    };

    std::string bench_;
    std::string path_;
    std::vector<ConfigEntry> config_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, double>> host_;
    bool hostStats_ = false;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

} // namespace rhythm::bench

#endif // RHYTHM_BENCH_COMMON_HH
